// Clock/IO abstraction tests: the epoll runtime's timers and real UDP
// sockets, and the same DNS stack running unchanged over either runtime.
//
// The loopback round-trip here is the in-tree half of the live-wire story:
// an AuthoritativeServer bound to a real 127.0.0.1 port answers a
// StubResolver whose retransmission timers are wall-clock epoll timers.
// tools/check.sh's livewire-smoke stage drives the same path through the
// mecdns_livewire binary from outside the process.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "dns/server.h"
#include "dns/stub.h"
#include "dns/transport.h"
#include "netio/epoll_runtime.h"
#include "netio/sim_runtime.h"

namespace mecdns::netio {
namespace {

using dns::DnsName;
using dns::RecordType;
using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

TEST(EpollRuntimeTest, TimersFireInDeadlineOrder) {
  EpollRuntime rt;
  std::vector<int> fired;
  rt.schedule_after(SimTime::millis(30), [&] { fired.push_back(30); });
  rt.schedule_after(SimTime::millis(10), [&] { fired.push_back(10); });
  rt.schedule_after(SimTime::millis(20), [&] {
    fired.push_back(20);
    rt.stop();
  });
  rt.run();
  // 30 ms had not elapsed when stop() was called from the 20 ms timer...
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  rt.run_until(rt.now() + SimTime::millis(100));
  // ...and a second run() picks it up: timers survive across runs.
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(rt.timers_fired(), 3u);
}

TEST(EpollRuntimeTest, EqualDeadlinesFireInScheduleOrder) {
  // The simulator breaks deadline ties by schedule sequence; the wall-clock
  // heap must match so ported code sees the same callback order.
  EpollRuntime rt;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    rt.schedule_after(SimTime::millis(5), [&fired, i] { fired.push_back(i); });
  }
  rt.run_until(rt.now() + SimTime::millis(50));
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EpollRuntimeTest, CancelledTimerNeverFires) {
  EpollRuntime rt;
  bool cancelled_fired = false;
  bool kept_fired = false;
  const TimerId doomed =
      rt.schedule_after(SimTime::millis(10), [&] { cancelled_fired = true; });
  rt.schedule_after(SimTime::millis(20), [&] { kept_fired = true; });
  rt.cancel(doomed);
  rt.cancel(doomed);  // double-cancel is harmless
  rt.cancel(kNoTimer);
  rt.run_until(rt.now() + SimTime::millis(60));
  EXPECT_FALSE(cancelled_fired);
  EXPECT_TRUE(kept_fired);
  EXPECT_EQ(rt.timers_cancelled(), 1u);
  EXPECT_EQ(rt.timers_fired(), 1u);
}

TEST(EpollRuntimeTest, NowTracksWallClock) {
  EpollRuntime rt;
  const SimTime start = rt.now();
  const auto wall_start = std::chrono::steady_clock::now();
  rt.run_until(start + SimTime::millis(40));
  const auto wall_elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - wall_start);
  EXPECT_GE(rt.now() - start, SimTime::millis(40));
  EXPECT_GE(wall_elapsed.count(), 35);  // really slept, didn't spin the clock
}

TEST(EpollRuntimeTest, LoopbackDatagramRoundTrip) {
  EpollRuntime rt;
  // Echo server on an ephemeral loopback port.
  DatagramSocket* echo = nullptr;
  echo = rt.open_socket(0, [&](const simnet::Packet& p) {
    std::vector<std::uint8_t> reply(p.payload.rbegin(), p.payload.rend());
    echo->send(p.src, reply);
  });
  ASSERT_NE(echo, nullptr);
  EXPECT_NE(echo->endpoint().port, 0);  // ephemeral bind resolved

  std::vector<std::uint8_t> got;
  DatagramSocket* client = rt.open_socket(0, [&](const simnet::Packet& p) {
    got = p.payload;
    rt.stop();
  });
  const std::vector<std::uint8_t> ping = {1, 2, 3, 4};
  client->send(echo->endpoint(), ping);
  rt.run_until(rt.now() + SimTime::millis(2000));
  EXPECT_EQ(got, (std::vector<std::uint8_t>{4, 3, 2, 1}));
  EXPECT_EQ(rt.packets_sent(), 2u);
  EXPECT_EQ(rt.packets_received(), 2u);

  rt.close_socket(client);
  rt.close_socket(echo);
  EXPECT_EQ(rt.open_sockets(), 0u);
}

/// The live-wire acceptance path in miniature: a real DNS query over a real
/// UDP socket on 127.0.0.1, answered by the authoritative server, with all
/// components destroyed cleanly (no leaked fds) afterwards.
TEST(EpollRuntimeTest, DnsQueryRoundTripsOverLoopback) {
  EpollRuntime rt;
  {
    dns::AuthoritativeServer server(rt, "edge-auth",
                                    LatencyModel::constant(SimTime::zero()),
                                    /*port=*/0);
    dns::Zone& zone = server.add_zone(DnsName::must_parse("mec.test"));
    zone.must_add(dns::make_a(DnsName::must_parse("video.mec.test"),
                              Ipv4Address::must_parse("192.0.2.7"), 60));
    ASSERT_NE(server.endpoint().port, 0);

    dns::StubResolver stub(rt, server.endpoint());
    dns::StubResult result;
    bool done = false;
    stub.resolve(DnsName::must_parse("video.mec.test"), RecordType::kA,
                 [&](const dns::StubResult& r) {
                   result = r;
                   done = true;
                   rt.stop();
                 });
    rt.run_until(rt.now() + SimTime::millis(5000));
    ASSERT_TRUE(done) << "no answer within 5 s on loopback";
    EXPECT_TRUE(result.ok);
    ASSERT_TRUE(result.address.has_value());
    EXPECT_EQ(*result.address, Ipv4Address::must_parse("192.0.2.7"));
    EXPECT_EQ(server.stats().queries, 1u);
    EXPECT_EQ(server.stats().responses, 1u);
  }
  // Server and stub destroyed: every socket they opened must be gone.
  EXPECT_EQ(rt.open_sockets(), 0u);
}

TEST(EpollRuntimeTest, WallClockRetransmissionTimeoutFires) {
  // A bound-but-silent socket stands in for a dead server: the transport's
  // retry ladder must run on real wall-clock timers and deliver the error.
  EpollRuntime rt;
  DatagramSocket* silent = rt.open_socket(0, [](const simnet::Packet&) {});

  dns::DnsTransport transport(rt);
  dns::DnsTransport::Options options;
  options.timeout = SimTime::millis(40);
  options.max_retries = 1;
  bool done = false;
  const SimTime start = rt.now();
  SimTime elapsed = SimTime::zero();
  transport.query(silent->endpoint(),
                  dns::make_query(0, DnsName::must_parse("x.test"),
                                  RecordType::kA),
                  options, [&](util::Result<dns::Message> result, SimTime) {
                    done = true;
                    elapsed = rt.now() - start;
                    EXPECT_FALSE(result.ok());
                    rt.stop();
                  });
  rt.run_until(rt.now() + SimTime::millis(5000));
  ASSERT_TRUE(done) << "timeout never fired";
  // Initial attempt + one retry at 40 ms each: the error lands no earlier
  // than 80 ms of real elapsed time.
  EXPECT_GE(elapsed, SimTime::millis(80));
  EXPECT_EQ(transport.timeouts(), 1u);
  EXPECT_EQ(transport.retransmissions(), 1u);
  EXPECT_EQ(rt.timers_fired(), 2u);

  rt.close_socket(silent);
}

/// The same stack the epoll round-trip runs — live-wire constructors and
/// all — works identically over the simulated runtime, which is the whole
/// point of the abstraction.
TEST(SimRuntimeTest, SameDnsStackRunsOverSimulatedRuntime) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(7));
  const simnet::NodeId node =
      net.add_node("edge", Ipv4Address::must_parse("10.0.0.1"));
  SimRuntime rt(net, node);

  dns::AuthoritativeServer server(rt, "edge-auth",
                                  LatencyModel::constant(SimTime::micros(500)),
                                  dns::kDnsPort);
  dns::Zone& zone = server.add_zone(DnsName::must_parse("mec.test"));
  zone.must_add(dns::make_a(DnsName::must_parse("video.mec.test"),
                            Ipv4Address::must_parse("192.0.2.7"), 60));

  dns::StubResolver stub(rt, server.endpoint());
  dns::StubResult result;
  bool done = false;
  stub.resolve(DnsName::must_parse("video.mec.test"), RecordType::kA,
               [&](const dns::StubResult& r) {
                 result = r;
                 done = true;
               });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  ASSERT_TRUE(result.address.has_value());
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("192.0.2.7"));
}

}  // namespace
}  // namespace mecdns::netio
