// End-to-end observability: a traced MEC lookup + content fetch must
// produce the paper's latency breakdown as spans (L-DNS serve, C-DNS
// route, cache get) whose sim-time durations nest inside the client's
// total, and metrics consistent with the component counters.
#include <gtest/gtest.h>

#include <string>

#include "cdn/cache_server.h"
#include "core/experiment.h"
#include "core/mec_cdn.h"
#include "dns/stub.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mecdns::core {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class ObsE2eTest : public ::testing::Test {
 protected:
  ObsE2eTest() : net_(sim_, util::Rng(17)), sink_(sim_) {
    MecCdnSite::Config config;
    config.answer_ttl = 0;  // every lookup reaches the C-DNS
    site_ = std::make_unique<MecCdnSite>(net_, config);

    client_ = net_.add_node("mobile", Ipv4Address::must_parse("203.0.113.1"));
    net_.add_link(client_, site_->orchestrator().cluster().gateway(),
                  LatencyModel::constant(SimTime::millis(1)));

    cdn::ContentCatalog catalog;
    catalog.add_series(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
                       "seg", 4, 1000);
    site_->add_delivery_service("demo1", catalog);
  }

  dns::StubResult traced_resolve(const std::string& name) {
    dns::StubResolver stub(net_, client_, site_->ldns_endpoint(),
                           dns::DnsTransport::Options{SimTime::millis(500),
                                                      0});
    stub.set_trace(&sink_);
    dns::StubResult out;
    stub.resolve(dns::DnsName::must_parse(name), dns::RecordType::kA,
                 [&](const dns::StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  const obs::SpanRecord* only_span(const std::string& component) {
    const auto spans = sink_.by_component(component);
    return spans.size() == 1 ? spans[0] : nullptr;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  obs::TraceSink sink_;
  std::unique_ptr<MecCdnSite> site_;
  simnet::NodeId client_;
};

TEST_F(ObsE2eTest, TracedLookupCoversEveryResolutionStage) {
  const auto result = traced_resolve("video.demo1.mycdn.ciab.test");
  ASSERT_TRUE(result.ok);

  // One root: the stub's lookup. Below it: the transport RPC, the L-DNS
  // serve, its plugins, and the C-DNS serve — >= 3 span levels.
  const obs::SpanRecord* root = only_span("stub");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_TRUE(root->finished);
  ASSERT_NE(root->tag("rcode"), nullptr);
  EXPECT_EQ(*root->tag("rcode"), "NOERROR");

  EXPECT_GE(sink_.by_component("transport").size(), 1u);
  ASSERT_GE(sink_.by_component("mec-coredns").size(), 1u);  // L-DNS serve
  ASSERT_GE(sink_.by_component("mec-cdns").size(), 1u);     // C-DNS route
  EXPECT_GE(sink_.by_component("plugin").size(), 1u);
  EXPECT_GE(sink_.max_depth(), 3u);

  // Every span belongs to this one lookup and nests inside the client's
  // total: children of the root must not outlast it, and the sum of the
  // root's direct children's durations cannot exceed the client-observed
  // time (the stages are sequential).
  // A drained run must leave no span open — an unfinished span means a
  // context guard was dropped without end().
  EXPECT_EQ(sink_.unfinished(), 0u);
  SimTime child_sum = SimTime::zero();
  for (const auto& span : sink_.spans()) {
    ASSERT_TRUE(span.finished) << span.component << "/" << span.name;
    EXPECT_EQ(sink_.root_of(span.id), root->id);
    EXPECT_GE(span.start, root->start);
    EXPECT_LE(span.end, root->end);
    if (span.parent == root->id) child_sum = child_sum + span.duration();
  }
  EXPECT_LE(child_sum, root->duration());
  EXPECT_GT(child_sum, SimTime::zero());

  // The C-DNS tagged its routing decision with the chosen cache.
  const auto cdns = sink_.by_component("mec-cdns");
  bool routed = false;
  for (const auto* span : cdns) {
    if (span->tag("route") != nullptr && *span->tag("route") == "routed") {
      routed = true;
      EXPECT_NE(span->tag("cache"), nullptr);
    }
  }
  EXPECT_TRUE(routed);
}

TEST_F(ObsE2eTest, TracedContentFetchReachesAnEdgeCache) {
  const auto result = traced_resolve("video.demo1.mycdn.ciab.test");
  ASSERT_TRUE(result.ok);
  sink_.clear();

  cdn::ContentClient content(net_, client_);
  obs::SpanRef fetch = obs::begin_root_span(&sink_, "client", "fetch");
  bool fetched = false;
  {
    obs::AmbientSpanGuard ambient(fetch);
    content.get(Endpoint{*result.address, cdn::kContentPort},
                cdn::Url::must_parse(
                    "video.demo1.mycdn.ciab.test/segment0000"),
                [&](util::Result<cdn::ContentResponse> response, SimTime) {
                  fetched = response.ok();
                });
  }
  sim_.run();
  fetch.end();
  ASSERT_TRUE(fetched);

  // content client span + the cache's serve span, nested under the fetch.
  ASSERT_GE(sink_.by_component("content").size(), 1u);
  bool cache_span = false;
  for (const auto& span : sink_.spans()) {
    if (span.component.rfind("edge-cache-", 0) == 0) {
      cache_span = true;
      EXPECT_TRUE(span.finished);
      EXPECT_NE(span.tag("cache"), nullptr);  // hit or miss
    }
  }
  EXPECT_TRUE(cache_span);
  EXPECT_GE(sink_.max_depth(), 3u);
}

TEST_F(ObsE2eTest, MetricsAgreeWithComponentCounters) {
  dns::StubResolver stub(net_, client_, site_->ldns_endpoint(),
                         dns::DnsTransport::Options{SimTime::millis(500), 0});
  QueryRunner runner(net_, stub);
  obs::Registry registry;
  runner.set_observers(nullptr, &registry);
  QueryRunner::Options options;
  options.queries = 10;
  options.warmup = 0;
  const SeriesResult series =
      runner.run(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
                 dns::RecordType::kA, options);
  site_->export_metrics(registry);

  EXPECT_EQ(registry.counter_value("runner.queries"), 10u);
  EXPECT_EQ(registry.histogram("runner.lookup_ms").count(),
            series.samples.size() - series.failures());
  // Sim-time histogram mean must match the series' own mean.
  EXPECT_NEAR(registry.histogram("runner.lookup_ms").mean(),
              series.totals().mean(), 1e-9);
  // The L-DNS saw at least one query per measured lookup, and the C-DNS
  // routed each uncached one to some cache.
  EXPECT_GE(registry.counter_value("site.ldns.queries"), 10u);
  EXPECT_GE(registry.counter_value("site.cdns.routed"), 1u);
  std::uint64_t selected = 0;
  for (const auto& [name, value] : registry.counters()) {
    if (name.rfind("site.cdns.selected.", 0) == 0) selected += value;
  }
  EXPECT_EQ(selected, registry.counter_value("site.cdns.routed"));
}

}  // namespace
}  // namespace mecdns::core
