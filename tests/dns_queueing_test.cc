// DnsServer service-capacity (queueing) tests.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "dns/transport.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class QueueingTest : public ::testing::Test {
 protected:
  QueueingTest() : net_(sim_, util::Rng(91)) {
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    const simnet::NodeId server_node =
        net_.add_node("server", Ipv4Address::must_parse("10.0.0.2"));
    net_.add_link(client_node_, server_node,
                  LatencyModel::constant(SimTime::millis(1)));
    // Deterministic 10ms service time.
    server_ = std::make_unique<AuthoritativeServer>(
        net_, server_node, "auth",
        LatencyModel::constant(SimTime::millis(10)));
    Zone& zone = server_->add_zone(DnsName::must_parse("q.test"));
    zone.must_add(make_a(DnsName::must_parse("www.q.test"),
                         Ipv4Address::must_parse("198.18.0.1"), 30));
    transport_ = std::make_unique<DnsTransport>(net_, client_node_);
  }

  /// Fires `n` queries at t=0 and returns each response's completion time.
  std::vector<double> burst(int n, SimTime timeout = SimTime::seconds(5)) {
    std::vector<double> completions;
    for (int i = 0; i < n; ++i) {
      DnsTransport::Options options;
      options.timeout = timeout;
      transport_->query(
          Endpoint{Ipv4Address::must_parse("10.0.0.2"), kDnsPort},
          make_query(0, DnsName::must_parse("www.q.test"), RecordType::kA),
          options, [&](util::Result<Message> result, SimTime) {
            if (result.ok()) completions.push_back(sim_.now().to_millis());
          });
    }
    sim_.run();
    return completions;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  std::unique_ptr<AuthoritativeServer> server_;
  std::unique_ptr<DnsTransport> transport_;
};

TEST_F(QueueingTest, UnlimitedCapacityServesBurstInParallel) {
  const auto completions = burst(8);
  ASSERT_EQ(completions.size(), 8u);
  // All finish together: 2ms RTT + 10ms service.
  for (const double t : completions) {
    EXPECT_NEAR(t, 12.0, 0.1);
  }
}

TEST_F(QueueingTest, SingleWorkerSerializesBurst) {
  server_->set_service_capacity(1);
  const auto completions = burst(5);
  ASSERT_EQ(completions.size(), 5u);
  // Completion times step by the 10ms service time.
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_NEAR(completions[i], 12.0 + 10.0 * static_cast<double>(i), 0.1);
  }
}

TEST_F(QueueingTest, TwoWorkersDoubleThroughput) {
  server_->set_service_capacity(2);
  const auto completions = burst(6);
  ASSERT_EQ(completions.size(), 6u);
  EXPECT_NEAR(completions.back(), 12.0 + 10.0 * 2, 0.1);  // 3 waves of 2
}

TEST_F(QueueingTest, QueueOverflowDrops) {
  server_->set_service_capacity(1, /*max_queue=*/3);
  const auto completions = burst(10, SimTime::millis(500));
  // 3 queued + 1 in flight... the first arrival starts service immediately
  // only after being queued+pumped, so exactly max_queue+? survive:
  // arrivals beyond the queue capacity are dropped.
  EXPECT_LT(completions.size(), 10u);
  EXPECT_GT(server_->dropped_overflow(), 0u);
  EXPECT_EQ(completions.size() + server_->dropped_overflow(), 10u);
}

TEST_F(QueueingTest, QueueDrainsAfterBurst) {
  server_->set_service_capacity(1);
  burst(4);
  EXPECT_EQ(server_->queue_depth(), 0u);
  // Server still serves fine afterwards.
  const auto later = burst(1);
  ASSERT_EQ(later.size(), 1u);
}

}  // namespace
}  // namespace mecdns::dns
