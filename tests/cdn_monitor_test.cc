// Traffic Monitor tests: automatic health detection and recovery.
#include <gtest/gtest.h>

#include "cdn/traffic_monitor.h"
#include "dns/stub.h"

namespace mecdns::cdn {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : net_(sim_, util::Rng(161)) {
    monitor_node_ =
        net_.add_node("monitor", Ipv4Address::must_parse("10.240.0.9"));
    router_node_ =
        net_.add_node("router", Ipv4Address::must_parse("10.240.0.53"));
    client_node_ =
        net_.add_node("client", Ipv4Address::must_parse("10.240.0.7"));
    cache_a_node_ =
        net_.add_node("cache-a", Ipv4Address::must_parse("10.240.0.11"));
    cache_b_node_ =
        net_.add_node("cache-b", Ipv4Address::must_parse("10.240.0.12"));
    for (const simnet::NodeId node :
         {router_node_, client_node_, cache_a_node_, cache_b_node_}) {
      net_.add_link(monitor_node_, node,
                    LatencyModel::constant(SimTime::micros(200)));
    }
    net_.add_link(client_node_, router_node_,
                  LatencyModel::constant(SimTime::micros(200)));
    net_.add_link(router_node_, cache_a_node_,
                  LatencyModel::constant(SimTime::micros(200)));

    TrafficRouter::Config config;
    config.cdn_domain = dns::DnsName::must_parse("cdn.test");
    config.answer_ttl = 0;
    router_ = std::make_unique<TrafficRouter>(
        net_, router_node_, "router",
        LatencyModel::constant(SimTime::micros(300)), config,
        Ipv4Address::must_parse("10.240.0.53"));
    router_->coverage().set_default_group("edge");
    router_->add_delivery_service(DeliveryService{
        "vod", dns::DnsName::must_parse("vod.cdn.test"), {"edge"}});

    const Url health = Url::must_parse("vod.cdn.test/_health");
    const auto add_cache = [&](const char* name, simnet::NodeId node,
                               const char* addr) {
      CacheServer::Config cc;
      auto cache = std::make_unique<CacheServer>(
          net_, node, name, cc, Ipv4Address::must_parse(addr));
      cache->warm(ContentObject{health, 64});
      cache->warm(ContentObject{Url::must_parse("vod.cdn.test/movie"), 1000});
      router_->add_cache("edge", CacheInfo{
          name, Ipv4Address::must_parse(addr), true});
      return cache;
    };
    cache_a_ = add_cache("cache-a", cache_a_node_, "10.240.0.11");
    cache_b_ = add_cache("cache-b", cache_b_node_, "10.240.0.12");

    TrafficMonitor::Config mc;
    mc.probe_interval = SimTime::millis(500);
    mc.probe_timeout = SimTime::millis(100);
    monitor_ = std::make_unique<TrafficMonitor>(net_, monitor_node_,
                                                *router_, mc);
    monitor_->watch("edge", "cache-a",
                    Endpoint{Ipv4Address::must_parse("10.240.0.11"),
                             kContentPort},
                    health);
    monitor_->watch("edge", "cache-b",
                    Endpoint{Ipv4Address::must_parse("10.240.0.12"),
                             kContentPort},
                    health);
  }

  Ipv4Address routed_answer_for(const std::string& name) {
    dns::StubResolver stub(
        net_, client_node_,
        Endpoint{Ipv4Address::must_parse("10.240.0.53"), dns::kDnsPort});
    Ipv4Address answer;
    stub.resolve(dns::DnsName::must_parse(name), dns::RecordType::kA,
                 [&](const dns::StubResult& result) {
                   if (result.ok) answer = *result.address;
                 });
    // Run only briefly so the monitor loop keeps going independently.
    sim_.run_until(sim_.now() + SimTime::millis(50));
    return answer;
  }

  Ipv4Address routed_answer() {
    return routed_answer_for("movie.vod.cdn.test");
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId monitor_node_;
  simnet::NodeId router_node_;
  simnet::NodeId client_node_;
  simnet::NodeId cache_a_node_;
  simnet::NodeId cache_b_node_;
  std::unique_ptr<TrafficRouter> router_;
  std::unique_ptr<CacheServer> cache_a_;
  std::unique_ptr<CacheServer> cache_b_;
  std::unique_ptr<TrafficMonitor> monitor_;
};

TEST_F(MonitorTest, HealthyCachesStayHealthy) {
  monitor_->start();
  sim_.run_until(SimTime::seconds(5));
  monitor_->stop();
  EXPECT_TRUE(monitor_->healthy("cache-a"));
  EXPECT_TRUE(monitor_->healthy("cache-b"));
  EXPECT_EQ(monitor_->transitions(), 0u);
  EXPECT_GE(monitor_->probes_sent(), 18u);  // ~10 rounds x 2 caches
}

TEST_F(MonitorTest, DeadCacheDetectedAndRoutedAround) {
  monitor_->start();
  sim_.run_until(SimTime::seconds(2));
  const Ipv4Address original = routed_answer();

  // Kill whichever cache currently serves the name.
  const bool killed_a = original == Ipv4Address::must_parse("10.240.0.11");
  net_.set_node_up(killed_a ? cache_a_node_ : cache_b_node_, false);

  // Two failed probes at 500ms intervals -> marked down within ~1.5s.
  sim_.run_until(sim_.now() + SimTime::seconds(3));
  EXPECT_FALSE(monitor_->healthy(killed_a ? "cache-a" : "cache-b"));
  EXPECT_EQ(monitor_->transitions(), 1u);

  const Ipv4Address rerouted = routed_answer();
  EXPECT_NE(rerouted, original);

  // Revive: after up_threshold successes, routing returns to the original.
  net_.set_node_up(killed_a ? cache_a_node_ : cache_b_node_, true);
  sim_.run_until(sim_.now() + SimTime::seconds(3));
  EXPECT_TRUE(monitor_->healthy(killed_a ? "cache-a" : "cache-b"));
  EXPECT_EQ(monitor_->transitions(), 2u);
  EXPECT_EQ(routed_answer(), original);

  monitor_->stop();
}

TEST_F(MonitorTest, BoundedRoundsDrainNaturally) {
  TrafficMonitor::Config mc;
  mc.probe_interval = SimTime::millis(100);
  mc.rounds = 5;
  TrafficMonitor bounded(net_, monitor_node_, *router_, mc);
  bounded.watch("edge", "cache-a",
                Endpoint{Ipv4Address::must_parse("10.240.0.11"),
                         kContentPort},
                Url::must_parse("vod.cdn.test/_health"));
  bounded.start();
  sim_.run();  // must terminate because rounds are bounded
  EXPECT_EQ(bounded.probes_sent(), 5u);
}

TEST_F(MonitorTest, SingleFailureBelowThresholdIsTolerated) {
  monitor_->start();
  // Probes fire at t = 0, 0.5, 1.0, ... . Go down strictly between probes
  // (after the 1.0 probe's response has landed) and come back before 2.0,
  // so exactly one probe (t=1.5) fails.
  sim_.run_until(SimTime::millis(1200));
  net_.set_node_up(cache_a_node_, false);
  sim_.run_until(SimTime::millis(1800));
  net_.set_node_up(cache_a_node_, true);
  sim_.run_until(sim_.now() + SimTime::seconds(2));
  EXPECT_TRUE(monitor_->healthy("cache-a"));
  EXPECT_EQ(monitor_->transitions(), 0u);
  monitor_->stop();
}

TEST_F(MonitorTest, IntermittentProbeLossDoesNotFlap) {
  // A lossy path that eats every other probe: the failure streak never
  // reaches down_threshold (2), so health must not flap. The outage
  // windows are placed around alternating probe instants (0.5s cadence)
  // so exactly probes at 1.5s, 2.5s, 3.5s and 4.5s are lost.
  monitor_->start();
  for (int k = 0; k < 4; ++k) {
    const SimTime down = SimTime::millis(1300 + k * 1000);
    const SimTime up = SimTime::millis(1700 + k * 1000);
    sim_.schedule_at(down, [this] { net_.set_node_up(cache_a_node_, false); });
    sim_.schedule_at(up, [this] { net_.set_node_up(cache_a_node_, true); });
  }
  sim_.run_until(SimTime::seconds(6));
  EXPECT_TRUE(monitor_->healthy("cache-a"));
  EXPECT_EQ(monitor_->transitions(), 0u);
  monitor_->stop();
}

TEST_F(MonitorTest, RouterNeverRoutesToDrainedCache) {
  // Once the monitor drains a cache, no qname — wherever it hashes on the
  // ring — may be answered with the drained address.
  monitor_->start();
  sim_.run_until(SimTime::seconds(1));
  net_.set_node_up(cache_a_node_, false);
  sim_.run_until(sim_.now() + SimTime::seconds(3));
  ASSERT_FALSE(monitor_->healthy("cache-a"));
  for (int i = 0; i < 16; ++i) {
    const Ipv4Address answer =
        routed_answer_for("m" + std::to_string(i) + ".vod.cdn.test");
    EXPECT_NE(answer, Ipv4Address::must_parse("10.240.0.11"));
    EXPECT_EQ(answer, Ipv4Address::must_parse("10.240.0.12"));
  }
  monitor_->stop();
}

}  // namespace
}  // namespace mecdns::cdn
