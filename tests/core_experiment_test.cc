// Measurement-harness unit tests: SeriesResult aggregation and QueryRunner
// scheduling semantics.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "dns/server.h"

namespace mecdns::core {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

TEST(SeriesResult, AggregatesSplitByValidity) {
  SeriesResult series;
  QuerySample good;
  good.ok = true;
  good.total_ms = 30;
  good.wireless_ms = 20;
  good.beyond_pgw_ms = 10;
  good.breakdown_valid = true;
  good.address = Ipv4Address::must_parse("10.96.0.11");
  series.samples.push_back(good);

  QuerySample no_breakdown = good;
  no_breakdown.total_ms = 40;
  no_breakdown.breakdown_valid = false;
  series.samples.push_back(no_breakdown);

  QuerySample failed;
  failed.ok = false;
  series.samples.push_back(failed);

  EXPECT_EQ(series.totals().size(), 2u);
  EXPECT_DOUBLE_EQ(series.totals().mean(), 35.0);
  EXPECT_EQ(series.wireless().size(), 1u);
  EXPECT_EQ(series.beyond_pgw().size(), 1u);
  EXPECT_EQ(series.failures(), 1u);
  EXPECT_DOUBLE_EQ(series.answer_share([](Ipv4Address a) {
                     return a == Ipv4Address::must_parse("10.96.0.11");
                   }),
                   1.0);
}

class QueryRunnerTest : public ::testing::Test {
 protected:
  QueryRunnerTest() : net_(sim_, util::Rng(71)) {
    const simnet::NodeId server_node =
        net_.add_node("server", Ipv4Address::must_parse("10.0.0.2"));
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    net_.add_link(client_node_, server_node,
                  LatencyModel::constant(SimTime::millis(2)));
    server_ = std::make_unique<dns::AuthoritativeServer>(
        net_, server_node, "auth",
        LatencyModel::constant(SimTime::micros(100)));
    dns::Zone& zone = server_->add_zone(dns::DnsName::must_parse("x.test"));
    zone.must_add(dns::make_a(dns::DnsName::must_parse("www.x.test"),
                              Ipv4Address::must_parse("198.18.0.1"), 0));
    stub_ = std::make_unique<dns::StubResolver>(
        net_, client_node_,
        Endpoint{Ipv4Address::must_parse("10.0.0.2"), dns::kDnsPort});
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  std::unique_ptr<dns::AuthoritativeServer> server_;
  std::unique_ptr<dns::StubResolver> stub_;
};

TEST_F(QueryRunnerTest, RunsExactlyTheMeasuredQueries) {
  QueryRunner runner(net_, *stub_);
  QueryRunner::Options options;
  options.queries = 7;
  options.warmup = 3;
  options.spacing = SimTime::millis(100);
  const SeriesResult result = runner.run(
      dns::DnsName::must_parse("www.x.test"), dns::RecordType::kA, options);
  EXPECT_EQ(result.samples.size(), 7u);  // warmups excluded
  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(server_->stats().queries, 10u);  // but they did hit the server
}

TEST_F(QueryRunnerTest, SamplesCarryLatency) {
  QueryRunner runner(net_, *stub_);
  QueryRunner::Options options;
  options.queries = 4;
  options.spacing = SimTime::millis(50);
  const SeriesResult result = runner.run(
      dns::DnsName::must_parse("www.x.test"), dns::RecordType::kA, options);
  for (const auto& sample : result.samples) {
    EXPECT_NEAR(sample.total_ms, 4.1, 0.2);  // 2x2ms link + processing
    EXPECT_FALSE(sample.breakdown_valid);    // no tap installed
  }
}

TEST_F(QueryRunnerTest, NxDomainCountsAsFailure) {
  QueryRunner runner(net_, *stub_);
  QueryRunner::Options options;
  options.queries = 3;
  const SeriesResult result = runner.run(
      dns::DnsName::must_parse("missing.x.test"), dns::RecordType::kA,
      options);
  EXPECT_EQ(result.failures(), 3u);
  for (const auto& sample : result.samples) {
    EXPECT_EQ(sample.rcode, dns::RCode::kNxDomain);
  }
}

TEST_F(QueryRunnerTest, EcsOptionFlowsThrough) {
  QueryRunner runner(net_, *stub_);
  QueryRunner::Options options;
  options.queries = 1;
  options.with_ecs = true;
  options.ecs.address = Ipv4Address::must_parse("203.0.113.0");
  options.ecs.source_prefix = 24;
  const SeriesResult result = runner.run(
      dns::DnsName::must_parse("www.x.test"), dns::RecordType::kA, options);
  EXPECT_EQ(result.failures(), 0u);
}

}  // namespace
}  // namespace mecdns::core
