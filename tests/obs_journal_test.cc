// Flight-recorder journal: record/sort semantics, ring overflow keeps the
// newest events and counts the drop, byte-stable JSON, and — because this
// binary links the alloc hooks — a hard pin that steady-state record() is
// allocation-free (the journal sits on control paths inside the simulator
// hot loop).
#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "obs/perf.h"

namespace mecdns {
namespace {

using obs::Journal;
using obs::JournalEvent;
using obs::JournalKind;
using simnet::SimTime;

TEST(JournalTest, SortsByTimeThenSequence) {
  Journal journal(16);
  // Post-run passes (SLO derivation) append with past timestamps, so the
  // export order must be (time, seq), not ring order.
  journal.record(SimTime::millis(300), JournalKind::kGuardTrip);
  journal.record(SimTime::millis(100), JournalKind::kFaultInject);
  journal.record(SimTime::millis(300), JournalKind::kGuardRecover);
  journal.record(SimTime::millis(200), JournalKind::kSloBreach);

  const auto events = journal.sorted_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, JournalKind::kFaultInject);
  EXPECT_EQ(events[1].kind, JournalKind::kSloBreach);
  // Equal timestamps keep record order via seq.
  EXPECT_EQ(events[2].kind, JournalKind::kGuardTrip);
  EXPECT_EQ(events[3].kind, JournalKind::kGuardRecover);
  EXPECT_LT(events[2].seq, events[3].seq);
}

TEST(JournalTest, OverflowKeepsNewestAndCountsDropped) {
  Journal journal(4);
  for (int i = 0; i < 10; ++i) {
    journal.record(SimTime::millis(i), JournalKind::kRetarget, /*cell=*/-1,
                   "", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.recorded(), 10u);
  EXPECT_EQ(journal.dropped(), 6u);
  EXPECT_TRUE(journal.overflowed());

  // Forensics wants the reaction tail: the survivors are events 6..9.
  const auto events = journal.sorted_events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6u + i);
  }
}

TEST(JournalTest, ToJsonReportsDropFlagAndIsByteStable) {
  const auto build = [] {
    Journal journal(2);
    journal.record(SimTime::millis(5), JournalKind::kFaultInject, 0,
                   "node_down", 7, 9);
    journal.record(SimTime::millis(6), JournalKind::kGuardTrip, 1);
    journal.record(SimTime::millis(7), JournalKind::kGuardRecover, 1);
    return journal.to_json();
  };
  const std::string json = build();
  EXPECT_EQ(json, build());
  EXPECT_NE(json.find("\"recorded\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 1"), std::string::npos);
  // The dropped (oldest) event is gone from the export.
  EXPECT_EQ(json.find("fault_inject"), std::string::npos);
  EXPECT_NE(json.find("guard_trip"), std::string::npos);
}

TEST(JournalTest, DetailTruncatesToFixedSlot) {
  Journal journal(4);
  const std::string longer(200, 'x');
  journal.record(SimTime::zero(), JournalKind::kCacheDrain, -1,
                 longer.c_str());
  const auto events = journal.sorted_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::strlen(events[0].detail), sizeof(events[0].detail));
}

TEST(JournalTest, ClearResetsEverything) {
  Journal journal(2);
  journal.record(SimTime::zero(), JournalKind::kScaleUp);
  journal.record(SimTime::zero(), JournalKind::kScaleUp);
  journal.record(SimTime::zero(), JournalKind::kScaleUp);
  journal.clear();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.recorded(), 0u);
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_TRUE(journal.sorted_events().empty());
}

TEST(JournalTest, SlugRoundTripsForEveryKind) {
  for (int k = 0; k <= static_cast<int>(JournalKind::kStaleServe); ++k) {
    const auto kind = static_cast<JournalKind>(k);
    JournalKind parsed;
    ASSERT_TRUE(obs::journal_kind_from_slug(obs::journal_kind_slug(kind),
                                            parsed));
    EXPECT_EQ(parsed, kind);
  }
  JournalKind parsed;
  EXPECT_FALSE(obs::journal_kind_from_slug("not-a-kind", parsed));
}

TEST(JournalTest, SeedAndActionTaxonomyIsDisjoint) {
  for (int k = 0; k <= static_cast<int>(JournalKind::kStaleServe); ++k) {
    const auto kind = static_cast<JournalKind>(k);
    EXPECT_FALSE(obs::journal_kind_is_seed(kind) &&
                 obs::journal_kind_is_action(kind))
        << obs::journal_kind_slug(kind);
  }
  EXPECT_TRUE(obs::journal_kind_is_seed(JournalKind::kFaultInject));
  EXPECT_TRUE(obs::journal_kind_is_action(JournalKind::kLdnsFailover));
}

TEST(JournalAllocTest, SteadyStateRecordIsAllocationFree) {
  ASSERT_TRUE(obs::alloc_counting_active());
  Journal journal(256);
  // Warm up: first pass fills the ring; overflow path must also be free.
  journal.record(SimTime::zero(), JournalKind::kGuardTrip);
  const obs::PerfSnapshot before = obs::PerfSnapshot::take();
  for (int i = 0; i < 4096; ++i) {
    journal.record(SimTime::millis(i), JournalKind::kGuardTrip, i % 8,
                   "shed on", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(before.delta().allocs, 0u);
  EXPECT_EQ(journal.dropped(), 4097u - 256u);
}

}  // namespace
}  // namespace mecdns
