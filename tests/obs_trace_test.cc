// obs/trace tests: span nesting, ambient propagation across scheduled
// events, sim-time monotonicity, and Chrome trace-event export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"
#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns::obs {
namespace {

using simnet::SimTime;

class TraceTest : public ::testing::Test {
 protected:
  simnet::Simulator sim_;
  TraceSink sink_{sim_};
};

TEST_F(TraceTest, ParentChildNesting) {
  const SpanId root = sink_.begin(0, "stub", "lookup");
  const SpanId child = sink_.begin(root, "transport", "query");
  const SpanId grandchild = sink_.begin(child, "server", "serve");
  sink_.end(grandchild);
  sink_.end(child);
  sink_.end(root);

  EXPECT_EQ(sink_.size(), 3u);
  EXPECT_EQ(sink_.find(child)->parent, root);
  EXPECT_EQ(sink_.root_of(grandchild), root);
  EXPECT_EQ(sink_.root_of(root), root);
  EXPECT_EQ(sink_.depth(root), 0u);
  EXPECT_EQ(sink_.depth(grandchild), 2u);
  EXPECT_EQ(sink_.max_depth(), 3u);
  ASSERT_EQ(sink_.children_of(root).size(), 1u);
  EXPECT_EQ(sink_.children_of(root)[0]->id, child);
  ASSERT_EQ(sink_.by_component("transport").size(), 1u);
}

TEST_F(TraceTest, AmbientContextFlowsAcrossScheduledEvents) {
  SpanRef root = begin_root_span(&sink_, "test", "root");
  {
    AmbientSpanGuard ambient(root);
    // The token is captured at schedule time; the child span opened inside
    // the event must attach to `root` even though the guard is gone by then.
    sim_.schedule_after(SimTime::millis(1), [this] {
      SpanRef child = begin_span("test", "child");
      SpanRef inert = begin_span("test", "ignored");
      (void)inert;
      child.end();
    });
  }
  sim_.run();
  root.end();

  const auto children = sink_.children_of(root.id());
  ASSERT_EQ(children.size(), 2u);  // "child" and "ignored"
  EXPECT_EQ(children[0]->name, "child");
  EXPECT_TRUE(children[0]->finished);
  EXPECT_EQ(children[0]->start, SimTime::millis(1));
}

TEST_F(TraceTest, NoAmbientMeansInertSpans) {
  SpanRef span = begin_span("test", "orphan");
  EXPECT_FALSE(span.active());
  span.tag("k", "v");  // must be no-ops, not crashes
  span.end();
  EXPECT_EQ(sink_.size(), 0u);
  EXPECT_FALSE(ambient_span().active());
}

TEST_F(TraceTest, SimTimeMonotonicity) {
  // Spans begun at successive sim times: ids (creation order) must carry
  // non-decreasing start stamps, and every finished span has end >= start.
  SpanRef root = begin_root_span(&sink_, "test", "root");
  AmbientSpanGuard ambient(root);
  for (int i = 1; i <= 4; ++i) {
    sim_.schedule_at(SimTime::millis(i), [this, i] {
      SpanRef span = begin_span("test", "step");
      sim_.schedule_after(SimTime::micros(250 * i), [span] { span.end(); });
    });
  }
  sim_.run();
  root.end();

  ASSERT_EQ(sink_.size(), 5u);
  for (std::size_t i = 1; i < sink_.spans().size(); ++i) {
    EXPECT_GE(sink_.spans()[i].start, sink_.spans()[i - 1].start);
  }
  for (const auto& span : sink_.spans()) {
    ASSERT_TRUE(span.finished);
    EXPECT_GE(span.end, span.start);
    EXPECT_GE(span.duration(), SimTime::zero());
  }
  // The root covers all of its children.
  for (const auto* child : sink_.children_of(root.id())) {
    EXPECT_GE(child->start, sink_.find(root.id())->start);
    EXPECT_LE(child->end, sink_.find(root.id())->end);
  }
}

// Minimal structural JSON check: quotes toggle a string state, braces and
// brackets must balance outside strings.
bool json_balanced(const std::string& text) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !in_string;
}

TEST_F(TraceTest, ChromeTraceIsWellFormed) {
  const SpanId root = sink_.begin(0, "stub", "lookup \"quoted\"\n");
  sink_.add_tag(root, "rcode", "NOERROR");
  const SpanId child = sink_.begin(root, "transport", "query");
  sink_.end(child);
  sink_.end(root);
  const SpanId open = sink_.begin(0, "stub", "unterminated");
  (void)open;

  const std::string json = sink_.to_chrome_trace();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  // One "X" complete event per span, each on its root's track.
  std::size_t events = 0;
  for (std::size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    ++events;
  }
  EXPECT_EQ(events, sink_.size());
  // The quote and newline in the span name must be escaped.
  EXPECT_NE(json.find("lookup \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"rcode\":\"NOERROR\""), std::string::npos);
  // The never-ended span is flagged rather than silently zero-length.
  EXPECT_NE(json.find("\"unfinished\":true"), std::string::npos);
}

}  // namespace
}  // namespace mecdns::obs
