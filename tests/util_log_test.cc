// util/log tests: level gating, lazy operand evaluation, and the
// thread-local sim-clock stamping hook.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simnet/simulator.h"
#include "simnet/time.h"
#include "util/log.h"

namespace mecdns::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() {
    set_log_sink([this](LogLevel level, const std::string& line) {
      levels_.push_back(level);
      lines_.push_back(line);
    });
  }
  ~LogTest() override {
    set_log_sink(nullptr);
    set_log_level(LogLevel::kOff);
    clear_log_clock(this);
  }

  std::vector<LogLevel> levels_;
  std::vector<std::string> lines_;
};

TEST_F(LogTest, LevelGatesEmission) {
  set_log_level(LogLevel::kInfo);
  MECDNS_LOG(kDebug, "dns") << "below threshold";
  MECDNS_LOG(kInfo, "dns") << "at threshold";
  MECDNS_LOG(kError, "dns") << "above threshold";

  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(levels_[0], LogLevel::kInfo);
  EXPECT_EQ(levels_[1], LogLevel::kError);
  EXPECT_NE(lines_[0].find("[INFO] dns: at threshold"), std::string::npos);
  EXPECT_NE(lines_[1].find("[ERROR] dns: above threshold"),
            std::string::npos);
}

TEST_F(LogTest, OffDropsEverything) {
  set_log_level(LogLevel::kOff);
  MECDNS_LOG(kError, "dns") << "never seen";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, DisabledLogSkipsOperandEvaluation) {
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  MECDNS_LOG(kDebug, "dns") << touch();  // disabled: operand must not run
  EXPECT_EQ(evaluations, 0);
  MECDNS_LOG(kWarn, "dns") << touch();  // enabled: operand runs once
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(lines_.size(), 1u);
}

TEST_F(LogTest, ClockHookStampsSimTime) {
  set_log_level(LogLevel::kInfo);
  static constexpr auto clock = [](const void*) -> std::int64_t {
    return 1'500'000;  // 1.5 ms in nanoseconds
  };
  set_log_clock(clock, this);
  MECDNS_LOG(kInfo, "dns") << "stamped";
  clear_log_clock(this);
  MECDNS_LOG(kInfo, "dns") << "bare";

  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0].rfind("[t=1.500ms] ", 0), 0u) << lines_[0];
  EXPECT_EQ(lines_[1].rfind("[INFO]", 0), 0u) << lines_[1];
}

TEST_F(LogTest, StaleOwnerCannotClearNewerClock) {
  set_log_level(LogLevel::kInfo);
  static constexpr auto clock = [](const void*) -> std::int64_t {
    return 2'000'000;
  };
  int other = 0;
  set_log_clock(clock, this);
  clear_log_clock(&other);  // not the registrant: must be a no-op
  MECDNS_LOG(kInfo, "dns") << "still stamped";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].rfind("[t=2.000ms] ", 0), 0u) << lines_[0];
}

TEST_F(LogTest, SimulatorRegistersItselfAsClock) {
  set_log_level(LogLevel::kInfo);
  {
    simnet::Simulator sim;
    sim.schedule_at(simnet::SimTime::millis(5),
                    [] { MECDNS_LOG(kInfo, "sim") << "from event"; });
    sim.run();
  }
  // The simulator unregistered on destruction; later lines are unstamped.
  MECDNS_LOG(kInfo, "sim") << "after teardown";

  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_EQ(lines_[0].rfind("[t=5.000ms] ", 0), 0u) << lines_[0];
  EXPECT_EQ(lines_[1].rfind("[INFO]", 0), 0u) << lines_[1];
}

}  // namespace
}  // namespace mecdns::util
