// End-to-end smoke tests: the full Figure 5 scenarios and the measurement
// study run, resolve correctly, and land in the expected latency bands.
#include <gtest/gtest.h>

#include "core/fig5.h"
#include "core/study.h"

namespace mecdns {
namespace {

TEST(Smoke, MecCdnScenarioResolvesToMecCache) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  core::Fig5Testbed testbed(config);
  const core::SeriesResult result = testbed.measure(20);

  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.samples.size(), 20u);
  EXPECT_DOUBLE_EQ(result.answer_share([&](simnet::Ipv4Address addr) {
                     return testbed.is_mec_cache(addr);
                   }),
                   1.0);
  const double mean = result.totals().mean();
  EXPECT_GT(mean, 20.0);  // includes the LTE wireless RTT
  EXPECT_LT(mean, 40.0);
  // Breakdown: wireless dominates for the MEC deployment.
  EXPECT_GT(result.wireless().mean(), 15.0);
  EXPECT_LT(result.beyond_pgw().mean(), 15.0);
}

TEST(Smoke, ProviderLdnsScenarioResolvesToCloud) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kProviderLdns;
  core::Fig5Testbed testbed(config);
  const core::SeriesResult result = testbed.measure(10);

  EXPECT_EQ(result.failures(), 0u);
  EXPECT_DOUBLE_EQ(result.answer_share([&](simnet::Ipv4Address addr) {
                     return testbed.is_cloud_cache(addr);
                   }),
                   1.0);
  EXPECT_GT(result.totals().mean(), 60.0);
}

TEST(Smoke, StudyCellularSlowerThanWired) {
  core::MeasurementStudy::Config config;
  config.queries_per_cell = 15;
  core::MeasurementStudy study(config);
  const auto wired = study.run_cell(0, workload::kWiredCampus);
  const auto cellular = study.run_cell(0, workload::kCellularMobile);
  EXPECT_EQ(wired.failures, 0u);
  EXPECT_EQ(cellular.failures, 0u);
  EXPECT_GT(cellular.trimmed.mean, wired.trimmed.mean * 1.5);
}

}  // namespace
}  // namespace mecdns
