// core::ParallelCampaign: the determinism contract.
//
// The engine promises that a campaign's merged output is byte-identical
// for any worker count — each job's result is a pure function of
// (campaign_seed, job_index), results land in fixed slots, and a failing
// job fills its own slot's error without disturbing any other job. These
// tests drive a 12-job grid of real (tiny) simulations through workers
// {1, 2, 8} and compare the serialized results byte for byte.
#include "core/parallel.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "simnet/network.h"
#include "simnet/simulator.h"
#include "util/rng.h"

namespace mecdns::core {
namespace {

constexpr std::uint64_t kCampaignSeed = 2024;
constexpr std::size_t kJobs = 12;
constexpr std::size_t kFailingJob = 5;

/// One tiny but real simulation: a private Simulator/Network/Rng per job,
/// a few scheduled events, and a digest of the RNG stream — enough state
/// that any cross-job interference or seed drift changes the output.
std::string run_job(std::size_t index) {
  if (index == kFailingJob) {
    throw std::runtime_error("synthetic failure in job " +
                             std::to_string(index));
  }
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(job_seed(kCampaignSeed, index)));
  util::Rng rng(job_seed(kCampaignSeed, index));
  std::uint64_t digest = 0;
  for (int event = 0; event < 8; ++event) {
    sim.schedule_at(simnet::SimTime::millis(event + 1),
                    [&digest, &rng, event] {
                      digest = digest * 1099511628211ull ^ rng.next() ^
                               static_cast<std::uint64_t>(event);
                    });
  }
  sim.run();
  return "job" + std::to_string(index) + ":" + std::to_string(digest) + ":" +
         std::to_string(sim.now().to_millis());
}

/// Runs the grid at `workers` and serializes the outcome vector in job
/// order, exactly as the benches' merge phase does.
std::string merged_output(std::size_t workers) {
  const ParallelCampaign campaign(workers);
  const auto outcomes = campaign.run<std::string>(kJobs, run_job);
  std::string merged;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    merged += outcomes[i].ok ? outcomes[i].value
                             : "error(" + outcomes[i].error + ")";
    merged += '\n';
  }
  return merged;
}

TEST(ParallelCampaign, MergedOutputIsByteIdenticalAcrossWorkerCounts) {
  const std::string serial = merged_output(1);
  EXPECT_EQ(serial, merged_output(2));
  EXPECT_EQ(serial, merged_output(8));
}

TEST(ParallelCampaign, FailingJobFillsItsSlotWithoutDisturbingOthers) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    const ParallelCampaign campaign(workers);
    const auto outcomes = campaign.run<std::string>(kJobs, run_job);
    ASSERT_EQ(outcomes.size(), kJobs);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (i == kFailingJob) {
        EXPECT_FALSE(outcomes[i].ok);
        EXPECT_EQ(outcomes[i].error, "synthetic failure in job 5");
        EXPECT_TRUE(outcomes[i].value.empty());
      } else {
        EXPECT_TRUE(outcomes[i].ok) << "job " << i << ": "
                                    << outcomes[i].error;
        EXPECT_EQ(outcomes[i].value, run_job(i)) << "job " << i;
      }
    }
  }
}

TEST(ParallelCampaign, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  const ParallelCampaign campaign(8);
  campaign.run_indexed(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "job " << i;
  }
}

TEST(JobSeed, IsAPureFunctionAndDistinctAcrossJobsAndCampaigns) {
  EXPECT_EQ(job_seed(42, 3), job_seed(42, 3));
  // Distinct per job and per campaign seed (SplitMix64 is bijective, so
  // collisions here would mean equal inputs).
  EXPECT_NE(job_seed(42, 0), job_seed(42, 1));
  EXPECT_NE(job_seed(42, 0), job_seed(43, 0));
  // Matches the documented derivation.
  EXPECT_EQ(job_seed(42, 7), split_mix64(42ull ^ 7ull));
  // Zero inputs must not degenerate to zero (SplitMix64 of 0 is mixed).
  EXPECT_NE(job_seed(0, 0), 0u);
}

TEST(ResolveWorkers, PassesThroughPositiveAndDefaultsOtherwise) {
  EXPECT_EQ(resolve_workers(1), 1u);
  EXPECT_EQ(resolve_workers(7), 7u);
  EXPECT_GE(resolve_workers(0), 1u);
  EXPECT_GE(resolve_workers(-3), 1u);
}

}  // namespace
}  // namespace mecdns::core
