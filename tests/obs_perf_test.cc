// Perf-counter layer: hot paths bump the thread-local counters, snapshots
// delta correctly, and export_perf distinguishes "not measured" from zero.
// This binary deliberately does NOT link obs/alloc_hooks.cc, so it also
// pins the uninstrumented behaviour (core_throughput_test links the hooks
// and pins the instrumented side).
#include "obs/perf.h"

#include <gtest/gtest.h>

#include "dns/message.h"
#include "dns/wire.h"
#include "simnet/simulator.h"
#include "util/perfcount.h"

namespace mecdns {
namespace {

TEST(PerfCountTest, WireCodecBumpsCounters) {
  const obs::PerfSnapshot before = obs::PerfSnapshot::take();
  const dns::Message query = dns::make_query(
      7, dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
      dns::RecordType::kA);
  const auto wire = dns::encode(query);
  auto decoded = dns::decode(wire);
  ASSERT_TRUE(decoded.ok());
  const util::perf::Counters delta = before.delta();
  EXPECT_EQ(delta.dns_encoded, 1u);
  EXPECT_EQ(delta.dns_decoded, 1u);
  EXPECT_EQ(delta.dns_bytes_encoded, wire.size());
  EXPECT_EQ(delta.dns_bytes_decoded, wire.size());
}

TEST(PerfCountTest, SimulatorBumpsEventCounters) {
  const obs::PerfSnapshot before = obs::PerfSnapshot::take();
  simnet::Simulator sim;
  int ran = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(simnet::SimTime::millis(i), [&ran] { ++ran; });
  }
  sim.run();
  const util::perf::Counters delta = before.delta();
  EXPECT_EQ(ran, 5);
  EXPECT_EQ(delta.events_scheduled, 5u);
  EXPECT_EQ(delta.events_fired, 5u);
}

TEST(PerfCountTest, SnapshotDeltaIsRelativeNotAbsolute) {
  simnet::Simulator sim;
  sim.schedule_at(simnet::SimTime::zero(), [] {});
  sim.run();  // counters are now nonzero for this thread
  const obs::PerfSnapshot before = obs::PerfSnapshot::take();
  const util::perf::Counters delta = before.delta();
  EXPECT_EQ(delta.events_fired, 0u);
  EXPECT_EQ(delta.dns_encoded, 0u);
}

TEST(PerfExportTest, AllocCountingInactiveWithoutHooks) {
  EXPECT_FALSE(obs::alloc_counting_active());
  // Without the hook TU linked, allocations leave the counters untouched.
  const obs::PerfSnapshot before = obs::PerfSnapshot::take();
  auto* p = new int[32];
  delete[] p;
  EXPECT_EQ(before.delta().allocs, 0u);
}

TEST(PerfExportTest, ExportOmitsAllocMetricsWhenNotMeasured) {
  util::perf::Counters delta;
  delta.allocs = 123;  // garbage that must NOT surface as a real count
  delta.dns_encoded = 8;
  delta.dns_decoded = 12;
  delta.dns_bytes_encoded = 400;
  delta.dns_bytes_decoded = 600;
  delta.events_fired = 40;
  obs::Registry registry;
  obs::export_perf(registry, "perf.", delta, /*queries=*/4);

  EXPECT_EQ(registry.counters().count("perf.allocs"), 0u);
  EXPECT_EQ(registry.gauges().count("perf.allocs_per_query"), 0u);
  EXPECT_EQ(registry.counter_value("perf.dns_encoded"), 8u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("perf.dns_encoded_per_query"), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("perf.dns_decoded_per_query"), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("perf.wire_bytes_per_query"),
                   250.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("perf.events_per_query"), 10.0);
}

TEST(PerfExportTest, ZeroQueriesExportsCountersButNoRatios) {
  util::perf::Counters delta;
  delta.dns_encoded = 8;
  obs::Registry registry;
  obs::export_perf(registry, "perf.", delta, /*queries=*/0);
  EXPECT_EQ(registry.counter_value("perf.dns_encoded"), 8u);
  EXPECT_TRUE(registry.gauges().empty());
}

}  // namespace
}  // namespace mecdns
