// Randomized-topology properties of the network fabric: on any connected
// graph, routing delivers; route costs satisfy metric properties; link
// failures only partition what they must.
#include <gtest/gtest.h>

#include "simnet/network.h"

namespace mecdns::simnet {
namespace {

struct RandomTopology {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;
};

/// Builds a connected random graph: a spanning chain plus extra random
/// edges, with uniform-random constant link delays.
RandomTopology make_topology(std::uint64_t seed, std::size_t n,
                             std::size_t extra_edges) {
  RandomTopology topo;
  topo.sim = std::make_unique<Simulator>();
  topo.net = std::make_unique<Network>(*topo.sim, util::Rng(seed * 31 + 1));
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    topo.nodes.push_back(topo.net->add_node(
        "n" + std::to_string(i),
        Ipv4Address(static_cast<std::uint32_t>(0x0a000001 + i))));
  }
  const auto random_delay = [&rng] {
    return LatencyModel::constant(
        SimTime::micros(100.0 + static_cast<double>(rng.uniform_int(5000u))));
  };
  for (std::size_t i = 1; i < n; ++i) {
    // Chain edge to a random earlier node keeps the graph connected.
    const std::size_t j = rng.uniform_int(i);
    topo.links.push_back(
        topo.net->add_link(topo.nodes[i], topo.nodes[j], random_delay()));
  }
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const std::size_t a = rng.uniform_int(n);
    std::size_t b = rng.uniform_int(n);
    if (a == b) b = (b + 1) % n;
    topo.links.push_back(
        topo.net->add_link(topo.nodes[a], topo.nodes[b], random_delay()));
  }
  return topo;
}

class TopologyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyProperty, EveryPairIsRoutable) {
  RandomTopology topo = make_topology(GetParam(), 24, 12);
  for (std::size_t i = 0; i < topo.nodes.size(); i += 5) {
    for (std::size_t j = 0; j < topo.nodes.size(); j += 3) {
      const auto cost = topo.net->route_cost(topo.nodes[i], topo.nodes[j]);
      ASSERT_TRUE(cost.has_value()) << i << "->" << j;
      if (i == j) EXPECT_EQ(*cost, SimTime::zero());
    }
  }
}

TEST_P(TopologyProperty, RouteCostsAreSymmetricAndTriangular) {
  RandomTopology topo = make_topology(GetParam(), 16, 10);
  auto& net = *topo.net;
  for (std::size_t i = 0; i < topo.nodes.size(); i += 2) {
    for (std::size_t j = i + 1; j < topo.nodes.size(); j += 3) {
      const SimTime ij = *net.route_cost(topo.nodes[i], topo.nodes[j]);
      const SimTime ji = *net.route_cost(topo.nodes[j], topo.nodes[i]);
      EXPECT_EQ(ij, ji);  // symmetric delays in this construction
      for (std::size_t k = 0; k < topo.nodes.size(); k += 5) {
        const SimTime ik = *net.route_cost(topo.nodes[i], topo.nodes[k]);
        const SimTime kj = *net.route_cost(topo.nodes[k], topo.nodes[j]);
        EXPECT_LE(ij, ik + kj);  // triangle inequality for shortest paths
      }
    }
  }
}

TEST_P(TopologyProperty, PacketsArriveExactlyAtRouteCost) {
  RandomTopology topo = make_topology(GetParam(), 20, 8);
  auto& net = *topo.net;
  const NodeId src = topo.nodes.front();
  const NodeId dst = topo.nodes.back();
  const SimTime expected = *net.route_cost(src, dst);

  SimTime arrival = SimTime::max();
  net.open_socket(dst, 9, [&](const Packet&) { arrival = net.now(); });
  net.open_socket(src, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address(static_cast<std::uint32_t>(
                             0x0a000001 + topo.nodes.size() - 1)),
                         9},
                {42});
  topo.sim->run();
  EXPECT_EQ(arrival, expected);  // constant delays: exact match
}

TEST_P(TopologyProperty, CuttingASpanningLinkStillDeliversIfAlternateExists) {
  RandomTopology topo = make_topology(GetParam(), 12, 14);  // well-connected
  auto& net = *topo.net;
  util::Rng rng(GetParam() ^ 0xabcdef);
  // Take down 3 random links; with 11+14 edges the graph usually stays
  // connected — verify that whenever route_cost says reachable, delivery
  // actually works (consistency between the routing table and forwarding).
  for (int k = 0; k < 3; ++k) {
    net.set_link_up(topo.links[rng.uniform_int(topo.links.size())], false);
  }
  const NodeId src = topo.nodes[1];
  const NodeId dst = topo.nodes[topo.nodes.size() - 2];
  const auto cost = net.route_cost(src, dst);
  int delivered = 0;
  net.open_socket(dst, 9, [&](const Packet&) { ++delivered; });
  net.open_socket(src, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address(static_cast<std::uint32_t>(
                             0x0a000001 + topo.nodes.size() - 2)),
                         9},
                {1});
  topo.sim->run();
  EXPECT_EQ(delivered, cost.has_value() ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyProperty,
                         ::testing::Values(3, 14, 159, 2653, 58979));

}  // namespace
}  // namespace mecdns::simnet
