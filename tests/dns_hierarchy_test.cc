// PublicDnsHierarchy builder tests.
#include <gtest/gtest.h>

#include "dns/hierarchy.h"
#include "dns/recursive.h"
#include "dns/stub.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() : net_(sim_, util::Rng(61)) {
    backbone_ = net_.add_node("backbone", Ipv4Address::must_parse("192.0.2.1"));
    hierarchy_ = std::make_unique<PublicDnsHierarchy>(
        net_, backbone_, LatencyModel::constant(SimTime::millis(5)),
        LatencyModel::constant(SimTime::micros(300)));
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId backbone_;
  std::unique_ptr<PublicDnsHierarchy> hierarchy_;
};

TEST_F(HierarchyTest, RootHasSoa) {
  Zone* root_zone = hierarchy_->root().find_zone(DnsName::root());
  ASSERT_NE(root_zone, nullptr);
  EXPECT_FALSE(root_zone->find(DnsName::root(), RecordType::kSoa).empty());
  EXPECT_EQ(hierarchy_->root_hints().size(), 1u);
}

TEST_F(HierarchyTest, EnsureTldIsIdempotent) {
  hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.1"),
                         LatencyModel::constant(SimTime::millis(5)));
  const std::size_t nodes_after_first = net_.node_count();
  hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.99"),
                         LatencyModel::constant(SimTime::millis(5)));
  EXPECT_EQ(net_.node_count(), nodes_after_first);

  // The root delegates the TLD with glue.
  Zone* root_zone = hierarchy_->root().find_zone(DnsName::root());
  const auto result =
      root_zone->lookup(DnsName::must_parse("anything.test"), RecordType::kA);
  EXPECT_EQ(result.status, LookupStatus::kDelegation);
  EXPECT_EQ(result.glue.size(), 1u);
}

TEST_F(HierarchyTest, DelegateToUnknownTldThrows) {
  EXPECT_THROW(hierarchy_->delegate_to(
                   DnsName::must_parse("example.zzz"),
                   DnsName::must_parse("ns1.example.zzz"),
                   Ipv4Address::must_parse("198.51.100.1")),
               std::logic_error);
}

TEST_F(HierarchyTest, FullChainResolvesThroughResolver) {
  hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.1"),
                         LatencyModel::constant(SimTime::millis(5)));
  AuthoritativeServer& auth = hierarchy_->add_authoritative(
      DnsName::must_parse("site.test"), Ipv4Address::must_parse("198.51.100.9"),
      LatencyModel::constant(SimTime::millis(5)));
  auth.find_zone(DnsName::must_parse("site.test"))
      ->must_add(make_a(DnsName::must_parse("www.site.test"),
                        Ipv4Address::must_parse("198.18.7.7"), 300));

  const simnet::NodeId resolver_node =
      net_.add_node("resolver", Ipv4Address::must_parse("10.53.0.1"));
  net_.add_link(resolver_node, backbone_,
                LatencyModel::constant(SimTime::millis(1)));
  RecursiveResolver::Config config;
  config.root_servers = hierarchy_->root_hints();
  RecursiveResolver resolver(net_, resolver_node, "resolver",
                             LatencyModel::constant(SimTime::micros(300)),
                             config);

  const simnet::NodeId client =
      net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
  net_.add_link(client, resolver_node,
                LatencyModel::constant(SimTime::millis(1)));
  StubResolver stub(net_, client,
                    Endpoint{Ipv4Address::must_parse("10.53.0.1"), kDnsPort});
  StubResult out;
  stub.resolve(DnsName::must_parse("www.site.test"), RecordType::kA,
               [&](const StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(*out.address, Ipv4Address::must_parse("198.18.7.7"));
  // Exactly root -> tld -> authoritative on a cold cache.
  EXPECT_EQ(resolver.upstream_queries(), 3u);
}

TEST_F(HierarchyTest, AuthoritativeZoneHasInfrastructureRecords) {
  hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.1"),
                         LatencyModel::constant(SimTime::millis(5)));
  AuthoritativeServer& auth = hierarchy_->add_authoritative(
      DnsName::must_parse("site.test"),
      Ipv4Address::must_parse("198.51.100.9"),
      LatencyModel::constant(SimTime::millis(5)));
  Zone* zone = auth.find_zone(DnsName::must_parse("site.test"));
  ASSERT_NE(zone, nullptr);
  EXPECT_FALSE(zone->find(DnsName::must_parse("site.test"),
                          RecordType::kSoa)
                   .empty());
  EXPECT_FALSE(zone->find(DnsName::must_parse("site.test"), RecordType::kNs)
                   .empty());
  EXPECT_FALSE(zone->find(DnsName::must_parse("ns1.site.test"),
                          RecordType::kA)
                   .empty());
}

}  // namespace
}  // namespace mecdns::dns
