// Figure 5 scenario tests: every deployment resolves correctly, latencies
// order as the paper reports, and the breakdown/ECS machinery holds up.
#include <gtest/gtest.h>

#include "core/fig5.h"

namespace mecdns::core {
namespace {

// Each deployment runs as a parameterized case with its expected latency
// band (generous: shape, not absolute values) and answer class.
struct DeploymentExpectation {
  Fig5Deployment deployment;
  double mean_low_ms;
  double mean_high_ms;
  bool answers_from_mec;
};

class Fig5DeploymentTest
    : public ::testing::TestWithParam<DeploymentExpectation> {};

TEST_P(Fig5DeploymentTest, ResolvesInBandWithCorrectAnswers) {
  const DeploymentExpectation& expected = GetParam();
  Fig5Testbed::Config config;
  config.deployment = expected.deployment;
  Fig5Testbed testbed(config);
  const SeriesResult result = testbed.measure(25);

  EXPECT_EQ(result.failures(), 0u);
  EXPECT_EQ(result.samples.size(), 25u);

  const double mean = result.totals().mean();
  EXPECT_GT(mean, expected.mean_low_ms) << to_string(expected.deployment);
  EXPECT_LT(mean, expected.mean_high_ms) << to_string(expected.deployment);

  const double mec_share = result.answer_share(
      [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
  const double cloud_share = result.answer_share(
      [&](simnet::Ipv4Address a) { return testbed.is_cloud_cache(a); });
  if (expected.answers_from_mec) {
    EXPECT_DOUBLE_EQ(mec_share, 1.0);
  } else {
    EXPECT_DOUBLE_EQ(cloud_share, 1.0);
  }

  // Breakdown via the P-GW tap must be valid and the wireless part must be
  // the LTE RTT (~20 ms) in every deployment.
  EXPECT_GT(result.wireless().size(), 20u);
  EXPECT_NEAR(result.wireless().mean(), 21.0, 3.0);
  EXPECT_NEAR(result.totals().mean(),
              result.wireless().mean() + result.beyond_pgw().mean(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllDeployments, Fig5DeploymentTest,
    ::testing::Values(
        DeploymentExpectation{Fig5Deployment::kMecLdnsMecCdns, 23, 36, true},
        DeploymentExpectation{Fig5Deployment::kMecLdnsLanCdns, 28, 42, true},
        DeploymentExpectation{Fig5Deployment::kMecLdnsWanCdns, 50, 72, true},
        DeploymentExpectation{Fig5Deployment::kProviderLdns, 95, 135, false},
        DeploymentExpectation{Fig5Deployment::kGoogleDns, 95, 130, false},
        DeploymentExpectation{Fig5Deployment::kCloudflareDns, 250, 320,
                              false}),
    [](const ::testing::TestParamInfo<DeploymentExpectation>& info) {
      std::string name = to_string(info.param.deployment);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Fig5, PaperOrderingHolds) {
  // The paper's headline: MEC/MEC < MEC/LAN < MEC/WAN < {provider, Google}
  // < Cloudflare, with "up to 9x" between best and worst.
  std::map<Fig5Deployment, double> means;
  for (const auto deployment : all_fig5_deployments()) {
    Fig5Testbed::Config config;
    config.deployment = deployment;
    Fig5Testbed testbed(config);
    means[deployment] = testbed.measure(25).totals().mean();
  }
  EXPECT_LT(means[Fig5Deployment::kMecLdnsMecCdns],
            means[Fig5Deployment::kMecLdnsLanCdns]);
  EXPECT_LT(means[Fig5Deployment::kMecLdnsLanCdns],
            means[Fig5Deployment::kMecLdnsWanCdns]);
  EXPECT_LT(means[Fig5Deployment::kMecLdnsWanCdns],
            means[Fig5Deployment::kProviderLdns]);
  EXPECT_LT(means[Fig5Deployment::kGoogleDns],
            means[Fig5Deployment::kCloudflareDns]);

  const double speedup = means[Fig5Deployment::kCloudflareDns] /
                         means[Fig5Deployment::kMecLdnsMecCdns];
  EXPECT_GT(speedup, 7.0);
  EXPECT_LT(speedup, 13.0);
}

TEST(Fig5, MecLanGapIsAboutFiveMs) {
  // "The 5ms lower latency of MEC-CDN, compared to this ideal setting".
  Fig5Testbed::Config mec_config;
  mec_config.deployment = Fig5Deployment::kMecLdnsMecCdns;
  Fig5Testbed mec(mec_config);
  Fig5Testbed::Config lan_config;
  lan_config.deployment = Fig5Deployment::kMecLdnsLanCdns;
  Fig5Testbed lan(lan_config);
  const double gap =
      lan.measure(40).totals().mean() - mec.measure(40).totals().mean();
  EXPECT_NEAR(gap, 5.4, 2.0);
}

TEST(Fig5, BeyondPgwTimeIsSubTwentyOnlyWithinMecOrLan) {
  // §4: "other than MEC-CDN, only the ideal scenario of C-DNS ... on the
  // same LAN as MEC, makes it possible to serve a DNS request with sub-20ms"
  // (the non-wireless portion; the LTE air interface adds ~20ms on top).
  const auto beyond = [](Fig5Deployment deployment) {
    Fig5Testbed::Config config;
    config.deployment = deployment;
    Fig5Testbed testbed(config);
    return testbed.measure(25).beyond_pgw().mean();
  };
  EXPECT_LT(beyond(Fig5Deployment::kMecLdnsMecCdns), 20.0);
  EXPECT_LT(beyond(Fig5Deployment::kMecLdnsLanCdns), 20.0);
  EXPECT_GT(beyond(Fig5Deployment::kMecLdnsWanCdns), 20.0);
  EXPECT_GT(beyond(Fig5Deployment::kProviderLdns), 20.0);
}

TEST(Fig5, EcsKeepsAnswersCorrectAndRoughlyNeutral) {
  for (const auto deployment :
       {Fig5Deployment::kMecLdnsMecCdns, Fig5Deployment::kMecLdnsLanCdns,
        Fig5Deployment::kMecLdnsWanCdns}) {
    Fig5Testbed::Config base_config;
    base_config.deployment = deployment;
    Fig5Testbed base(base_config);
    const double base_mean = base.measure(30).totals().mean();

    Fig5Testbed::Config ecs_config;
    ecs_config.deployment = deployment;
    ecs_config.enable_ecs = true;
    Fig5Testbed ecs(ecs_config);
    const SeriesResult ecs_result = ecs.measure(30);

    EXPECT_EQ(ecs_result.failures(), 0u);
    EXPECT_DOUBLE_EQ(
        ecs_result.answer_share(
            [&](simnet::Ipv4Address a) { return ecs.is_mec_cache(a); }),
        1.0)
        << to_string(deployment);
    const double ratio = ecs_result.totals().mean() / base_mean;
    EXPECT_GT(ratio, 0.93) << to_string(deployment);
    EXPECT_LT(ratio, 1.12) << to_string(deployment);
  }
}

TEST(Fig5, FiveGAccessShrinksTheWirelessShare) {
  // §4: "Future 5G deployments will drastically reduce this time".
  Fig5Testbed::Config config;
  config.deployment = Fig5Deployment::kMecLdnsMecCdns;
  config.access = ran::nr5g();
  Fig5Testbed testbed(config);
  const SeriesResult result = testbed.measure(25);
  EXPECT_EQ(result.failures(), 0u);
  EXPECT_LT(result.totals().mean(), 15.0);  // vs ~29 on LTE
  EXPECT_LT(result.wireless().mean(), 6.0);
}

TEST(Fig5, DeterministicAcrossRunsWithSameSeed) {
  Fig5Testbed::Config config;
  config.deployment = Fig5Deployment::kMecLdnsMecCdns;
  Fig5Testbed a(config);
  Fig5Testbed b(config);
  const SeriesResult ra = a.measure(10);
  const SeriesResult rb = b.measure(10);
  ASSERT_EQ(ra.samples.size(), rb.samples.size());
  for (std::size_t i = 0; i < ra.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.samples[i].total_ms, rb.samples[i].total_ms);
  }
}

TEST(Fig5, DifferentSeedsGiveDifferentSamplesSameShape) {
  Fig5Testbed::Config a_config;
  a_config.deployment = Fig5Deployment::kMecLdnsMecCdns;
  a_config.seed = 1;
  Fig5Testbed::Config b_config = a_config;
  b_config.seed = 2;
  Fig5Testbed a(a_config);
  Fig5Testbed b(b_config);
  const double mean_a = a.measure(25).totals().mean();
  const double mean_b = b.measure(25).totals().mean();
  EXPECT_NE(mean_a, mean_b);
  EXPECT_NEAR(mean_a, mean_b, 4.0);
}

}  // namespace
}  // namespace mecdns::core
