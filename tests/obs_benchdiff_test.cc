// Bench diff engine: regression directions, threshold semantics,
// forward-compatibility with unknown/missing keys, and the tolerance
// override parser behind `mecdns_report --tol`.
#include "obs/benchdiff.h"

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace mecdns {
namespace {

util::JsonValue parse(const std::string& text) {
  auto result = util::JsonValue::parse(text);
  EXPECT_TRUE(result.ok()) << text;
  return result.ok() ? result.value() : util::JsonValue();
}

std::string scenario_doc(const std::string& fields) {
  return "{\"bench\": \"t\", \"scenarios\": [{\"scenario\": \"s\", " +
         fields + "}]}";
}

obs::BenchDiff diff(const std::string& before_fields,
                    const std::string& after_fields) {
  const auto rules = obs::default_metric_rules(0.05, 0.5);
  return obs::diff_bench(parse(scenario_doc(before_fields)),
                         parse(scenario_doc(after_fields)), rules);
}

TEST(BenchDiffTest, IdenticalDocumentsAreClean) {
  const std::string fields = "\"p99\": 10.0, \"allocs_per_query\": 100.0";
  const obs::BenchDiff d = diff(fields, fields);
  EXPECT_TRUE(d.clean());
  EXPECT_EQ(d.scenarios_compared, 1u);
  EXPECT_EQ(d.metrics_compared, 2u);
  EXPECT_TRUE(d.notes.empty());
}

TEST(BenchDiffTest, LatencyRegressionNeedsBothThresholds) {
  // +0.4 ms on 10 ms: inside the 0.5 ms absolute slack -> clean.
  EXPECT_TRUE(diff("\"p99\": 10.0", "\"p99\": 10.4").clean());
  // +0.6 ms on 100 ms: past the slack but only +0.6% relative -> clean.
  EXPECT_TRUE(diff("\"p99\": 100.0", "\"p99\": 100.6").clean());
  // +2 ms on 10 ms: past both -> regression.
  const obs::BenchDiff d = diff("\"p99\": 10.0", "\"p99\": 12.0");
  ASSERT_EQ(d.regressions.size(), 1u);
  EXPECT_EQ(d.regressions[0].metric, "p99");
  EXPECT_EQ(d.regressions[0].scenario, "s");
}

TEST(BenchDiffTest, LatencyImprovementIsNotARegression) {
  EXPECT_TRUE(diff("\"p99\": 12.0", "\"p99\": 8.0").clean());
}

TEST(BenchDiffTest, LowerIsWorseMetricsRegressDownward) {
  EXPECT_FALSE(diff("\"success_rate\": 1.0", "\"success_rate\": 0.9")
                   .clean());
  EXPECT_TRUE(diff("\"success_rate\": 0.9", "\"success_rate\": 1.0")
                  .clean());
  EXPECT_FALSE(diff("\"qps_sim\": 2000.0", "\"qps_sim\": 1500.0").clean());
  EXPECT_TRUE(diff("\"qps_sim\": 1500.0", "\"qps_sim\": 2000.0").clean());
}

TEST(BenchDiffTest, PerQueryCostGatesWithoutAbsoluteSlack) {
  // 3% alloc growth: under the 5% relative threshold.
  EXPECT_TRUE(diff("\"allocs_per_query\": 100.0",
                   "\"allocs_per_query\": 103.0")
                  .clean());
  // 10% alloc growth: regression, no absolute floor to hide under.
  EXPECT_FALSE(diff("\"allocs_per_query\": 100.0",
                    "\"allocs_per_query\": 110.0")
                   .clean());
}

TEST(BenchDiffTest, QueueDepthHasSmallIntegerSlack) {
  EXPECT_TRUE(
      diff("\"peak_queue_depth\": 10", "\"peak_queue_depth\": 12").clean());
  EXPECT_FALSE(
      diff("\"peak_queue_depth\": 10", "\"peak_queue_depth\": 13").clean());
}

TEST(BenchDiffTest, NewFailuresRegressEvenFromZero) {
  EXPECT_FALSE(diff("\"failures\": 0", "\"failures\": 5").clean());
  EXPECT_TRUE(diff("\"failures\": 0", "\"failures\": 0").clean());
}

TEST(BenchDiffTest, UnknownKeysAreToleratedNotGated) {
  // A metric no rule knows can change wildly without tripping the gate.
  EXPECT_TRUE(diff("\"exotic_metric\": 1.0", "\"exotic_metric\": 9999.0")
                  .clean());
}

TEST(BenchDiffTest, NewMetricInCandidateIsANoteNotAnError) {
  const obs::BenchDiff d = diff("\"p99\": 10.0",
                                "\"p99\": 10.0, \"allocs_per_query\": 95.0");
  EXPECT_TRUE(d.clean());
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0].kind, obs::DiffEntry::Kind::kMetricNew);
  EXPECT_EQ(d.notes[0].metric, "allocs_per_query");
}

TEST(BenchDiffTest, MissingMetricInCandidateIsANote) {
  const obs::BenchDiff d = diff("\"p99\": 10.0, \"allocs_per_query\": 95.0",
                                "\"p99\": 10.0");
  EXPECT_TRUE(d.clean());
  ASSERT_EQ(d.notes.size(), 1u);
  EXPECT_EQ(d.notes[0].kind, obs::DiffEntry::Kind::kMetricMissing);
}

TEST(BenchDiffTest, ScenarioDisappearanceGatesNewScenarioDoesNot) {
  const auto rules = obs::default_metric_rules(0.05, 0.5);
  const auto two = parse(
      "{\"scenarios\": [{\"scenario\": \"a\", \"p99\": 1.0}, "
      "{\"scenario\": \"b\", \"p99\": 1.0}]}");
  const auto one = parse("{\"scenarios\": [{\"scenario\": \"a\", "
                         "\"p99\": 1.0}]}");
  const obs::BenchDiff lost = obs::diff_bench(two, one, rules);
  ASSERT_EQ(lost.regressions.size(), 1u);
  EXPECT_EQ(lost.regressions[0].kind,
            obs::DiffEntry::Kind::kScenarioMissing);
  EXPECT_EQ(lost.regressions[0].scenario, "b");

  const obs::BenchDiff gained = obs::diff_bench(one, two, rules);
  EXPECT_TRUE(gained.clean());
  ASSERT_EQ(gained.notes.size(), 1u);
  EXPECT_EQ(gained.notes[0].kind, obs::DiffEntry::Kind::kScenarioNew);
}

TEST(BenchDiffTest, ModeSuffixDistinguishesScenarios) {
  const auto rules = obs::default_metric_rules(0.05, 0.5);
  const auto before = parse(
      "{\"scenarios\": [{\"scenario\": \"a\", \"mode\": \"x\", "
      "\"p99\": 1.0}]}");
  const auto after = parse(
      "{\"scenarios\": [{\"scenario\": \"a\", \"mode\": \"y\", "
      "\"p99\": 1.0}]}");
  const obs::BenchDiff d = obs::diff_bench(before, after, rules);
  // a/x disappeared (regression), a/y is new (note).
  EXPECT_EQ(d.regressions.size(), 1u);
  EXPECT_EQ(d.notes.size(), 1u);
}

TEST(BenchDiffTest, ApplyTolerancesOverridesAndAppends) {
  auto rules = obs::default_metric_rules(0.05, 0.5);
  std::string error;
  ASSERT_TRUE(obs::apply_tolerances(rules, "p99=10,exotic_metric=2", error))
      << error;
  // p99 now tolerates 10%: the earlier +20% case still trips, +8% passes.
  EXPECT_TRUE(obs::diff_bench(parse(scenario_doc("\"p99\": 10.0")),
                              parse(scenario_doc("\"p99\": 10.8")), rules)
                  .clean());
  EXPECT_FALSE(obs::diff_bench(parse(scenario_doc("\"p99\": 10.0")),
                               parse(scenario_doc("\"p99\": 12.0")), rules)
                   .clean());
  // exotic_metric gained a higher-is-worse rule at 2%.
  EXPECT_FALSE(
      obs::diff_bench(parse(scenario_doc("\"exotic_metric\": 100.0")),
                      parse(scenario_doc("\"exotic_metric\": 105.0")), rules)
          .clean());
}

TEST(BenchDiffTest, ApplyTolerancesRejectsMalformedSpecs) {
  auto rules = obs::default_metric_rules(0.05, 0.5);
  std::string error;
  EXPECT_FALSE(obs::apply_tolerances(rules, "p99", error));
  EXPECT_FALSE(obs::apply_tolerances(rules, "p99=abc", error));
  EXPECT_FALSE(obs::apply_tolerances(rules, "=5", error));
  EXPECT_FALSE(obs::apply_tolerances(rules, "p99=-3", error));
  EXPECT_TRUE(obs::apply_tolerances(rules, "", error));
}

}  // namespace
}  // namespace mecdns
