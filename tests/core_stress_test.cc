// Stress: many concurrent clients interleaving through one MEC L-DNS.
//
// The plugin chain holds per-query state across asynchronous forward hops;
// this test drives heavy interleaving (internal + external clients, mixed
// namespaces, overlapping transactions) and checks every answer is correct
// and attributed to the right view.
#include <gtest/gtest.h>

#include <memory>

#include "core/mec_cdn.h"
#include "dns/stub.h"

namespace mecdns::core {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

TEST(Stress, ConcurrentMixedClientsThroughOneLdns) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(271828));
  MecCdnSite::Config config;
  config.answer_ttl = 0;
  MecCdnSite site(net, config);

  cdn::ContentCatalog catalog;
  catalog.add_series(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
                     "segment", 8, 1 << 16);
  site.add_delivery_service("demo1", catalog);
  site.orchestrator().publish(
      dns::DnsName::must_parse("hud.apps.mec.test"),
      Ipv4Address::must_parse("10.96.0.77"));

  // 6 external (mobile-side) clients and 2 internal VNFs.
  constexpr int kExternal = 6;
  constexpr int kInternal = 2;
  constexpr int kQueriesEach = 50;
  std::vector<std::unique_ptr<dns::StubResolver>> stubs;
  const simnet::NodeId gateway = site.orchestrator().cluster().gateway();
  for (int i = 0; i < kExternal; ++i) {
    const simnet::NodeId node = net.add_node(
        "mobile-" + std::to_string(i),
        Ipv4Address(0xcb007100u + static_cast<std::uint32_t>(i + 1)));
    net.add_link(node, gateway, LatencyModel::uniform(SimTime::micros(300),
                                                      SimTime::millis(3)));
    stubs.push_back(std::make_unique<dns::StubResolver>(
        net, node, site.ldns_endpoint()));
  }
  for (int i = 0; i < kInternal; ++i) {
    const simnet::NodeId node =
        site.orchestrator().cluster().add_worker("vnf-" + std::to_string(i));
    stubs.push_back(std::make_unique<dns::StubResolver>(
        net, node, site.ldns_endpoint()));
  }

  const auto& service_cidr =
      site.orchestrator().cluster().config().service_cidr;
  int answered = 0;
  int correct = 0;
  util::Rng rng(99);
  for (int q = 0; q < kQueriesEach; ++q) {
    for (std::size_t c = 0; c < stubs.size(); ++c) {
      const bool internal_client = c >= kExternal;
      // Interleave three query flavours with deliberately overlapping send
      // times (uniform jitter keeps transactions crossing each other).
      const auto at = SimTime::millis(10.0 * q + rng.uniform(0.0, 9.0));
      sim.schedule_at(at, [&, c, q, internal_client] {
        const int flavour = (q + static_cast<int>(c)) % 3;
        if (internal_client) {
          stubs[c]->resolve(
              dns::DnsName::must_parse(
                  "traffic-router.cdn.svc.cluster.local"),
              dns::RecordType::kA, [&](const dns::StubResult& result) {
                ++answered;
                if (result.ok &&
                    *result.address == site.cdns_endpoint().addr) {
                  ++correct;
                }
              });
          return;
        }
        if (flavour == 0) {
          stubs[c]->resolve(
              dns::DnsName::must_parse(
                  "obj" + std::to_string(q) + ".demo1.mycdn.ciab.test"),
              dns::RecordType::kA, [&](const dns::StubResult& result) {
                ++answered;
                if (result.ok && service_cidr.contains(*result.address)) {
                  ++correct;
                }
              });
        } else if (flavour == 1) {
          stubs[c]->resolve(dns::DnsName::must_parse("hud.apps.mec.test"),
                            dns::RecordType::kA,
                            [&](const dns::StubResult& result) {
                              ++answered;
                              if (result.ok &&
                                  *result.address ==
                                      Ipv4Address::must_parse("10.96.0.77")) {
                                ++correct;
                              }
                            });
        } else {
          // Non-MEC name: REFUSED is the correct outcome (no provider).
          stubs[c]->resolve(dns::DnsName::must_parse("www.elsewhere.org"),
                            dns::RecordType::kA,
                            [&](const dns::StubResult& result) {
                              ++answered;
                              if (result.rcode == dns::RCode::kRefused) {
                                ++correct;
                              }
                            });
        }
      });
    }
  }
  sim.run();

  const int expected = (kExternal + kInternal) * kQueriesEach;
  EXPECT_EQ(answered, expected);
  EXPECT_EQ(correct, expected);
  // The L-DNS really saw interleaved traffic from both views.
  EXPECT_EQ(site.ldns().view_queries("internal"),
            static_cast<std::uint64_t>(kInternal * kQueriesEach));
  EXPECT_EQ(site.ldns().view_queries("public"),
            static_cast<std::uint64_t>(kExternal * kQueriesEach));
}

}  // namespace
}  // namespace mecdns::core
