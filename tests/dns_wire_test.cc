#include <gtest/gtest.h>

#include "dns/edns.h"
#include "dns/wire.h"

namespace mecdns::dns {
namespace {

Message make_base_response() {
  Message msg = make_query(0x9ab3, DnsName::must_parse("www.example.com"),
                           RecordType::kA);
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.ra = true;
  return msg;
}

TEST(Wire, HeaderRoundTrip) {
  Message msg = make_base_response();
  msg.header.tc = true;
  msg.header.rcode = RCode::kNxDomain;
  msg.header.opcode = Opcode::kStatus;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header, msg.header);
  EXPECT_EQ(decoded.value().questions, msg.questions);
}

// Round-trip every structurally modelled record type.
struct RecordCase {
  std::string label;
  ResourceRecord rr;
};

class RecordRoundTrip : public ::testing::TestWithParam<RecordCase> {};

TEST_P(RecordRoundTrip, EncodeDecode) {
  Message msg = make_base_response();
  msg.answers.push_back(GetParam().rr);
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  ASSERT_EQ(decoded.value().answers.size(), 1u);
  EXPECT_EQ(decoded.value().answers.front(), GetParam().rr);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RecordRoundTrip,
    ::testing::Values(
        RecordCase{"A",
                   make_a(DnsName::must_parse("www.example.com"),
                          simnet::Ipv4Address::must_parse("203.0.113.9"),
                          3600)},
        RecordCase{"CNAME",
                   make_cname(DnsName::must_parse("www.example.com"),
                              DnsName::must_parse("edge.cdn.example.net"),
                              300)},
        RecordCase{"NS", make_ns(DnsName::must_parse("example.com"),
                                 DnsName::must_parse("ns1.example.com"),
                                 86400)},
        RecordCase{"SOA", make_soa(DnsName::must_parse("example.com"),
                                   DnsName::must_parse("ns1.example.com"), 7,
                                   600, 3600)},
        RecordCase{"TXT",
                   make_txt(DnsName::must_parse("example.com"),
                            {"hello world", "second string"}, 60)},
        RecordCase{"PTR",
                   make_ptr(DnsName::must_parse("9.113.0.203.in-addr.arpa"),
                            DnsName::must_parse("www.example.com"), 60)},
        RecordCase{"SRV",
                   make_srv(DnsName::must_parse("_dns._udp.example.com"), 10,
                            20, 53, DnsName::must_parse("ns1.example.com"),
                            120)}),
    [](const ::testing::TestParamInfo<RecordCase>& info) {
      return info.param.label;
    });

TEST(Wire, AaaaRoundTrip) {
  Message msg = make_base_response();
  AaaaRecord aaaa;
  for (std::size_t i = 0; i < aaaa.address.size(); ++i) {
    aaaa.address[i] = static_cast<std::uint8_t>(i);
  }
  msg.answers.push_back(ResourceRecord{DnsName::must_parse("v6.example.com"),
                                       RecordType::kAaaa, RecordClass::kIn,
                                       60, aaaa});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers.front(), msg.answers.front());
}

TEST(Wire, UnknownTypePreservedAsRaw) {
  Message msg = make_base_response();
  msg.answers.push_back(ResourceRecord{
      DnsName::must_parse("x.example.com"), static_cast<RecordType>(99),
      RecordClass::kIn, 60, RawRecord{99, {1, 2, 3, 4}}});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  const auto* raw = std::get_if<RawRecord>(&decoded.value().answers[0].rdata);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Wire, CompressionShrinksRepeatedNames) {
  Message msg = make_base_response();
  for (int i = 0; i < 6; ++i) {
    msg.answers.push_back(make_a(
        DnsName::must_parse("www.example.com"),
        simnet::Ipv4Address(0x0a000001u + static_cast<std::uint32_t>(i)),
        60));
  }
  const auto wire = encode(msg);
  // Uncompressed, each answer would repeat the 17-byte owner name. With
  // compression every repeat is a 2-byte pointer.
  const std::size_t uncompressed_estimate = 12 + 21 + 6 * (17 + 14);
  EXPECT_LT(wire.size(), uncompressed_estimate - 5 * 13);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers.size(), 6u);
  EXPECT_EQ(decoded.value().answers[5].name,
            DnsName::must_parse("www.example.com"));
}

TEST(Wire, CompressionSharesSuffixes) {
  Message msg = make_base_response();
  msg.answers.push_back(make_cname(DnsName::must_parse("www.example.com"),
                                   DnsName::must_parse("cdn.example.com"),
                                   60));
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  const auto* cname = std::get_if<CnameRecord>(&decoded.value().answers[0].rdata);
  ASSERT_NE(cname, nullptr);
  EXPECT_EQ(cname->target, DnsName::must_parse("cdn.example.com"));
}

TEST(Wire, EcsOptionRoundTrip) {
  Message msg = make_base_response();
  msg.edns = Edns{};
  msg.edns->udp_payload_size = 4096;
  ClientSubnet ecs;
  ecs.address = simnet::Ipv4Address::must_parse("203.0.113.0");
  ecs.source_prefix = 24;
  ecs.scope_prefix = 16;
  msg.edns->client_subnet = ecs;

  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded.value().edns.has_value());
  EXPECT_EQ(decoded.value().edns->udp_payload_size, 4096);
  ASSERT_TRUE(decoded.value().edns->client_subnet.has_value());
  EXPECT_EQ(*decoded.value().edns->client_subnet, ecs);
  // The OPT record itself must not remain in additionals after lifting.
  EXPECT_TRUE(decoded.value().additionals.empty());
}

TEST(Wire, EcsAddressTruncatedToSourcePrefix) {
  // RFC 7871 §6: ADDRESS carries only ceil(prefix/8) octets, low bits zero.
  Edns edns;
  ClientSubnet ecs;
  ecs.address = simnet::Ipv4Address::must_parse("10.45.77.200");
  ecs.source_prefix = 16;
  edns.client_subnet = ecs;
  const auto rdata = encode_edns_options(edns);
  // option header (4) + family/prefixes (4) + 2 address octets.
  EXPECT_EQ(rdata.size(), 10u);
  Edns back;
  ASSERT_TRUE(decode_edns_options(rdata, back).ok());
  EXPECT_EQ(back.client_subnet->address,
            simnet::Ipv4Address::must_parse("10.45.0.0"));
}

TEST(Wire, EcsZeroPrefixMeansNoAddress) {
  Edns edns;
  ClientSubnet ecs;
  ecs.address = simnet::Ipv4Address::must_parse("10.45.77.200");
  ecs.source_prefix = 0;
  edns.client_subnet = ecs;
  Edns back;
  ASSERT_TRUE(decode_edns_options(encode_edns_options(edns), back).ok());
  EXPECT_EQ(back.client_subnet->source_prefix, 0);
  EXPECT_TRUE(back.client_subnet->address.is_unspecified());
}

TEST(Wire, MultiSectionMessage) {
  Message msg = make_base_response();
  msg.answers.push_back(make_a(DnsName::must_parse("www.example.com"),
                               simnet::Ipv4Address::must_parse("198.18.0.1"),
                               30));
  msg.authorities.push_back(make_ns(DnsName::must_parse("example.com"),
                                    DnsName::must_parse("ns1.example.com"),
                                    86400));
  msg.additionals.push_back(
      make_a(DnsName::must_parse("ns1.example.com"),
             simnet::Ipv4Address::must_parse("198.18.0.53"), 86400));
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().answers.size(), 1u);
  EXPECT_EQ(decoded.value().authorities.size(), 1u);
  EXPECT_EQ(decoded.value().additionals.size(), 1u);
}

// Every truncation of a valid message must fail cleanly, never crash or
// read out of bounds.
class TruncationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationTest, FailsGracefully) {
  Message msg = make_base_response();
  msg.answers.push_back(make_a(DnsName::must_parse("www.example.com"),
                               simnet::Ipv4Address::must_parse("198.18.0.1"),
                               30));
  msg.edns = Edns{};
  const auto wire = encode(msg);
  const std::size_t cut = GetParam();
  if (cut >= wire.size()) {
    GTEST_SKIP() << "message shorter than cut point";
  }
  const auto decoded =
      decode(std::span<const std::uint8_t>(wire.data(), cut));
  EXPECT_FALSE(decoded.ok());
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationTest,
                         ::testing::Values(0, 1, 5, 11, 12, 13, 20, 28, 29,
                                           33, 40, 45, 50, 55));

TEST(Wire, PointerLoopDetected) {
  // Craft a message whose qname is a self-referencing compression pointer.
  std::vector<std::uint8_t> wire = {
      0x12, 0x34,  // id
      0x00, 0x00,  // flags
      0x00, 0x01,  // qdcount
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xc0, 0x0c,  // pointer to offset 12 = itself
      0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode(wire).ok());
}

TEST(Wire, ForwardPointerRejected) {
  std::vector<std::uint8_t> wire = {
      0x12, 0x34, 0x00, 0x00, 0x00, 0x01,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xc0, 0x40,  // pointer past the end of the message
      0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode(wire).ok());
}

TEST(Wire, ReservedLabelTypeRejected) {
  std::vector<std::uint8_t> wire = {
      0x12, 0x34, 0x00, 0x00, 0x00, 0x01,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x80, 0x01, 'x',  // 0b10xxxxxx is reserved
      0x00, 0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(decode(wire).ok());
}

TEST(Wire, RdlengthMismatchRejected) {
  Message msg = make_base_response();
  msg.answers.push_back(make_a(DnsName::must_parse("a.example.com"),
                               simnet::Ipv4Address::must_parse("1.2.3.4"),
                               60));
  auto wire = encode(msg);
  // Find the A record's RDLENGTH (last 6 bytes are len+rdata) and corrupt it.
  wire[wire.size() - 6] = 0;
  wire[wire.size() - 5] = 7;  // claims 7 bytes of RDATA, only 4 present
  EXPECT_FALSE(decode(wire).ok());
}

TEST(Wire, EmptyQuestionMessageRoundTrips) {
  Message msg;
  msg.header.id = 1;
  msg.header.qr = true;
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().questions.empty());
}

TEST(Wire, QueryIdAndFlagsSurviveManyValues) {
  for (std::uint32_t id = 0; id < 0x10000; id += 0x1111) {
    Message msg = make_query(static_cast<std::uint16_t>(id),
                             DnsName::must_parse("x.test"), RecordType::kA);
    const auto decoded = decode(encode(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().header.id, static_cast<std::uint16_t>(id));
    EXPECT_TRUE(decoded.value().header.rd);
    EXPECT_FALSE(decoded.value().header.qr);
  }
}

}  // namespace
}  // namespace mecdns::dns
