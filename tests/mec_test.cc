// MEC orchestration tests: cluster IPs, service registry, orchestrator
// deployments and the ingress overload machinery.
#include <gtest/gtest.h>

#include "dns/wire.h"
#include "mec/cluster.h"
#include "mec/failover.h"
#include "mec/ingress.h"
#include "mec/orchestrator.h"
#include "mec/registry.h"

namespace mecdns::mec {
namespace {

using simnet::Ipv4Address;
using simnet::SimTime;

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : net_(sim_, util::Rng(3)), cluster_(net_, {}) {}

  simnet::Simulator sim_;
  simnet::Network net_;
  MecCluster cluster_;
};

TEST_F(ClusterTest, WorkersJoinFabric) {
  const simnet::NodeId w1 = cluster_.add_worker("infra");
  const simnet::NodeId w2 = cluster_.add_worker("cache-0");
  EXPECT_EQ(cluster_.worker_count(), 2u);
  // Workers are reachable from the gateway (and each other via it).
  EXPECT_TRUE(net_.route_cost(cluster_.gateway(), w1).has_value());
  EXPECT_TRUE(net_.route_cost(w1, w2).has_value());
}

TEST_F(ClusterTest, ServiceIpAllocation) {
  const Ipv4Address ip1 = cluster_.allocate_service_ip();
  const Ipv4Address ip2 = cluster_.allocate_service_ip();
  EXPECT_NE(ip1, ip2);
  EXPECT_TRUE(cluster_.config().service_cidr.contains(ip1));

  const Ipv4Address fixed = cluster_.allocate_service_ip(53);
  EXPECT_EQ(fixed, Ipv4Address::must_parse("10.96.0.53"));
  EXPECT_THROW(cluster_.allocate_service_ip(53), std::invalid_argument);
  EXPECT_THROW(cluster_.allocate_service_ip(0), std::out_of_range);
}

TEST_F(ClusterTest, ExposedServiceIpIsRoutable) {
  const simnet::NodeId worker = cluster_.add_worker("dns");
  const Ipv4Address cluster_ip = cluster_.allocate_service_ip(10);
  cluster_.expose_service_ip(worker, cluster_ip);
  EXPECT_EQ(net_.find_node(cluster_ip), worker);
}

TEST(Registry, ServiceRecordsAppearAndDisappear) {
  ServiceRegistry registry(dns::DnsName::must_parse("cluster.local"));
  EXPECT_EQ(registry.service_name("kube-dns", "kube-system"),
            dns::DnsName::must_parse("kube-dns.kube-system.svc.cluster.local"));

  registry.register_service("kube-dns", "kube-system",
                            Ipv4Address::must_parse("10.96.0.10"));
  EXPECT_TRUE(registry.has_service("kube-dns", "kube-system"));
  EXPECT_EQ(registry.service_count(), 1u);

  const auto result = registry.zone()->lookup(
      registry.service_name("kube-dns", "kube-system"), dns::RecordType::kA);
  ASSERT_EQ(result.status, dns::LookupStatus::kSuccess);
  EXPECT_EQ(std::get<dns::ARecord>(result.records[0].rdata).address,
            Ipv4Address::must_parse("10.96.0.10"));

  // Re-registration updates in place.
  registry.register_service("kube-dns", "kube-system",
                            Ipv4Address::must_parse("10.96.0.11"));
  EXPECT_EQ(registry.service_count(), 1u);

  registry.deregister_service("kube-dns", "kube-system");
  EXPECT_FALSE(registry.has_service("kube-dns", "kube-system"));
  EXPECT_EQ(registry.service_count(), 0u);
}

TEST(Orchestrator, DeployWiresIpDnsAndRouting) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(5));
  Orchestrator orchestrator(net, {});
  const simnet::NodeId worker = orchestrator.cluster().add_worker("w0");

  const Deployment dep =
      orchestrator.deploy("traffic-router", "cdn", worker, 53);
  EXPECT_EQ(dep.cluster_ip, Ipv4Address::must_parse("10.96.0.53"));
  EXPECT_EQ(net.find_node(dep.cluster_ip), worker);
  EXPECT_TRUE(orchestrator.registry().has_service("traffic-router", "cdn"));
  EXPECT_EQ(orchestrator.deployments().size(), 1u);

  orchestrator.undeploy("traffic-router", "cdn");
  EXPECT_FALSE(orchestrator.registry().has_service("traffic-router", "cdn"));
  EXPECT_TRUE(orchestrator.deployments().empty());
}

TEST(Orchestrator, PublishPopulatesPublicNamespace) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(5));
  Orchestrator orchestrator(net, {});
  const auto domain = dns::DnsName::must_parse("ar-app.apps.mec.test");
  orchestrator.publish(domain, Ipv4Address::must_parse("10.96.0.80"));

  const auto result =
      orchestrator.public_zone()->lookup(domain, dns::RecordType::kA);
  ASSERT_EQ(result.status, dns::LookupStatus::kSuccess);

  // Publish again: replaces, not duplicates.
  orchestrator.publish(domain, Ipv4Address::must_parse("10.96.0.81"));
  const auto replaced =
      orchestrator.public_zone()->lookup(domain, dns::RecordType::kA);
  ASSERT_EQ(replaced.records.size(), 1u);
  EXPECT_EQ(std::get<dns::ARecord>(replaced.records[0].rdata).address,
            Ipv4Address::must_parse("10.96.0.81"));

  orchestrator.unpublish(domain);
  EXPECT_EQ(orchestrator.public_zone()->lookup(domain, dns::RecordType::kA)
                .status,
            dns::LookupStatus::kNxDomain);
}

// --- ingress monitoring ---------------------------------------------------------

TEST(IngressMonitor, SlidingWindowRate) {
  IngressMonitor monitor(SimTime::seconds(1));
  for (int i = 0; i < 10; ++i) {
    monitor.record(SimTime::millis(100 * i));  // t=0..900ms
  }
  EXPECT_EQ(monitor.rate(SimTime::millis(900)), 10u);
  // At t=1.5s the window is [0.5s, 1.5s] inclusive: t=500..900ms -> 5.
  EXPECT_EQ(monitor.rate(SimTime::millis(1500)), 5u);
  EXPECT_EQ(monitor.rate(SimTime::seconds(10)), 0u);
}

TEST(OverloadGuard, ShedsAboveThreshold) {
  IngressMonitor monitor(SimTime::seconds(1));
  OverloadGuardPlugin guard(monitor, 5, OverloadAction::kRefuse);

  int admitted = 0;
  int refused = 0;
  for (int i = 0; i < 20; ++i) {
    dns::PluginContext ctx;
    ctx.query = dns::make_query(static_cast<std::uint16_t>(i),
                                dns::DnsName::must_parse("x.test"),
                                dns::RecordType::kA);
    ctx.net.received = SimTime::millis(10 * i);  // 100 qps, threshold 5
    guard.serve(
        ctx,
        [&](dns::Message response) {
          if (response.header.rcode == dns::RCode::kRefused) ++refused;
        },
        [&](dns::Plugin::Respond) { ++admitted; });
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(refused, 15);
  EXPECT_EQ(guard.admitted(), 5u);
  EXPECT_EQ(guard.shed(), 15u);
}

TEST(OverloadGuard, RecoversWhenWindowSlides) {
  IngressMonitor monitor(SimTime::seconds(1));
  OverloadGuardPlugin guard(monitor, 2, OverloadAction::kRefuse);
  int admitted = 0;
  const auto admit = [&](SimTime at) {
    dns::PluginContext ctx;
    ctx.query = dns::make_query(1, dns::DnsName::must_parse("x.test"),
                                dns::RecordType::kA);
    ctx.net.received = at;
    guard.serve(ctx, [](dns::Message) {},
                [&](dns::Plugin::Respond) { ++admitted; });
  };
  admit(SimTime::millis(0));
  admit(SimTime::millis(10));
  admit(SimTime::millis(20));  // shed
  EXPECT_EQ(admitted, 2);
  admit(SimTime::seconds(2));  // window slid: admitted again
  EXPECT_EQ(admitted, 3);
}

TEST(OverloadGuard, DropModeNeverResponds) {
  IngressMonitor monitor(SimTime::seconds(1));
  OverloadGuardPlugin guard(monitor, 1, OverloadAction::kDrop);
  int responses = 0;
  int next_calls = 0;
  for (int i = 0; i < 3; ++i) {
    dns::PluginContext ctx;
    ctx.query = dns::make_query(1, dns::DnsName::must_parse("x.test"),
                                dns::RecordType::kA);
    ctx.net.received = SimTime::millis(i);
    guard.serve(ctx, [&](dns::Message) { ++responses; },
                [&](dns::Plugin::Respond) { ++next_calls; });
  }
  EXPECT_EQ(next_calls, 1);
  EXPECT_EQ(responses, 0);  // shed queries are silently dropped
}

TEST(OverloadGuard, RecoveryHysteresisHoldsShedUntilQuiet) {
  IngressMonitor monitor(SimTime::seconds(1));
  OverloadGuardPlugin guard(monitor, 2, OverloadAction::kRefuse);
  guard.set_recovery_windows(2);  // stay shedding until 2s below threshold

  int admitted = 0;
  const auto query_at = [&](SimTime at) {
    dns::PluginContext ctx;
    ctx.query = dns::make_query(1, dns::DnsName::must_parse("x.test"),
                                dns::RecordType::kA);
    ctx.net.received = at;
    guard.serve(ctx, [](dns::Message) {},
                [&](dns::Plugin::Respond) { ++admitted; });
  };

  query_at(SimTime::millis(0));
  query_at(SimTime::millis(10));
  query_at(SimTime::millis(20));  // rate hits the threshold: trip
  EXPECT_EQ(admitted, 2);
  EXPECT_TRUE(guard.shedding());
  EXPECT_EQ(guard.trips(), 1u);

  // The stateless guard would re-admit here (the window slid empty); the
  // hysteresis keeps shedding until the rate stays below for 2 windows.
  query_at(SimTime::millis(1500));
  EXPECT_EQ(admitted, 2);
  EXPECT_TRUE(guard.shedding());
  query_at(SimTime::millis(2500));  // only 1s of quiet: still shedding
  EXPECT_EQ(admitted, 2);

  query_at(SimTime::millis(3600));  // 2.1s of quiet: recover + admit
  EXPECT_EQ(admitted, 3);
  EXPECT_FALSE(guard.shedding());
  EXPECT_EQ(guard.recoveries(), 1u);
}

TEST(OverloadGuard, BurstDuringQuietPeriodRestartsTheClock) {
  IngressMonitor monitor(SimTime::seconds(1));
  OverloadGuardPlugin guard(monitor, 2, OverloadAction::kRefuse);
  guard.set_recovery_windows(1);

  const auto query_at = [&](SimTime at) {
    dns::PluginContext ctx;
    ctx.query = dns::make_query(1, dns::DnsName::must_parse("x.test"),
                                dns::RecordType::kA);
    ctx.net.received = at;
    guard.serve(ctx, [](dns::Message) {}, [](dns::Plugin::Respond) {});
  };

  query_at(SimTime::millis(0));
  query_at(SimTime::millis(10));
  query_at(SimTime::millis(20));  // trip
  ASSERT_TRUE(guard.shedding());
  query_at(SimTime::millis(1500));  // quiet clock starts
  // An over-threshold burst while quieting: shed storm, clock must reset.
  // (Shed queries are not recorded, so drive the rate with the monitor.)
  monitor.record(SimTime::millis(1600));
  monitor.record(SimTime::millis(1610));
  query_at(SimTime::millis(1620));  // over threshold again
  query_at(SimTime::millis(2700));  // 1.08s after reset... quiet restarted
  EXPECT_TRUE(guard.shedding());    // 2700-1620 ~ 1.08s quiet, but the
                                    // below_since restarted at 2700
  query_at(SimTime::millis(3800));  // now 1.1s of quiet: recovers
  EXPECT_FALSE(guard.shedding());
  EXPECT_EQ(guard.recoveries(), 1u);
}

// --- L-DNS liveness failover ----------------------------------------------

TEST(LdnsFailover, SwitchesToFallbackOnCrashAndBackOnRestart) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(5));
  const simnet::NodeId vantage =
      net.add_node("orchestrator", Ipv4Address::must_parse("10.7.0.1"));
  const simnet::NodeId primary_node =
      net.add_node("mec-ldns", Ipv4Address::must_parse("10.7.0.53"));
  net.add_link(vantage, primary_node,
               simnet::LatencyModel::constant(SimTime::millis(1)));
  // A minimal DNS responder: any query gets an (empty) NOERROR answer —
  // liveness probing cares that *something* answers, not what.
  simnet::UdpSocket* responder = nullptr;
  responder = net.open_socket(
      primary_node, dns::kDnsPort, [&](const simnet::Packet& p) {
        auto query = dns::decode(p.payload);
        ASSERT_TRUE(query.ok());
        responder->send_to(p.src, dns::encode(dns::make_response(
                                      query.value())));
      });

  LdnsFailover::Config config;
  config.primary = {Ipv4Address::must_parse("10.7.0.53"), dns::kDnsPort};
  config.fallback = {Ipv4Address::must_parse("10.201.0.53"), dns::kDnsPort};
  LdnsFailover failover(net, vantage, config);

  std::vector<std::pair<SimTime, bool>> switches_seen;
  failover.set_on_switch(
      [&](const simnet::Endpoint& target, bool to_fallback) {
        switches_seen.emplace_back(net.now(), to_fallback);
        EXPECT_EQ(target,
                  to_fallback ? config.fallback : config.primary);
      });
  failover.start(/*rounds=*/12);  // probes every 500ms until t=6s

  // Probes at 0.5s and 1.0s answer; crash just after, restart at 3.2s.
  sim.schedule_at(SimTime::millis(1200),
                  [&] { net.set_node_up(primary_node, false); });
  sim.schedule_at(SimTime::millis(3200),
                  [&] { net.set_node_up(primary_node, true); });
  sim.run();

  ASSERT_EQ(switches_seen.size(), 2u);
  EXPECT_TRUE(switches_seen[0].second);    // down after 2 missed probes
  EXPECT_FALSE(switches_seen[1].second);   // back after 2 answered probes
  EXPECT_LT(switches_seen[0].first, SimTime::millis(3200));
  EXPECT_GT(switches_seen[1].first, SimTime::millis(3200));
  EXPECT_FALSE(failover.on_fallback());
  EXPECT_EQ(failover.switches().size(), 2u);
  EXPECT_GE(failover.probe_failures(), 2u);
}

TEST(LdnsFailover, SingleMissedProbeDoesNotSwitch) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(5));
  const simnet::NodeId vantage =
      net.add_node("orchestrator", Ipv4Address::must_parse("10.7.0.1"));
  const simnet::NodeId primary_node =
      net.add_node("mec-ldns", Ipv4Address::must_parse("10.7.0.53"));
  net.add_link(vantage, primary_node,
               simnet::LatencyModel::constant(SimTime::millis(1)));
  simnet::UdpSocket* responder = nullptr;
  responder = net.open_socket(
      primary_node, dns::kDnsPort, [&](const simnet::Packet& p) {
        auto query = dns::decode(p.payload);
        ASSERT_TRUE(query.ok());
        responder->send_to(p.src, dns::encode(dns::make_response(
                                      query.value())));
      });

  LdnsFailover::Config config;
  config.primary = {Ipv4Address::must_parse("10.7.0.53"), dns::kDnsPort};
  config.fallback = {Ipv4Address::must_parse("10.201.0.53"), dns::kDnsPort};
  LdnsFailover failover(net, vantage, config);
  int switches = 0;
  failover.set_on_switch(
      [&](const simnet::Endpoint&, bool) { ++switches; });
  failover.start(/*rounds=*/8);

  // Down only across the 1.5s probe; back before the 2.0s probe.
  sim.schedule_at(SimTime::millis(1300),
                  [&] { net.set_node_up(primary_node, false); });
  sim.schedule_at(SimTime::millis(1700),
                  [&] { net.set_node_up(primary_node, true); });
  sim.run();

  EXPECT_EQ(switches, 0);
  EXPECT_FALSE(failover.on_fallback());
  EXPECT_EQ(failover.probe_failures(), 1u);
}

}  // namespace
}  // namespace mecdns::mec
