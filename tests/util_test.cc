#include <gtest/gtest.h>

#include <cmath>

#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace mecdns::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntFullAndHalfRangeSpansDoNotOverflow) {
  // Regression: the inclusive-range overload used to compute hi - lo + 1 in
  // int64, which is signed-overflow UB once the span exceeds INT64_MAX —
  // UBSan flagged [INT64_MIN, INT64_MAX] and [INT64_MIN, 0]. The span is now
  // computed in uint64 (0 meaning the full 2^64 range). This test runs under
  // the UBSan job in check.sh stage 1, which is what actually exercises the
  // old overflow.
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Rng rng(13);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(kMin, kMax);
    saw_negative = saw_negative || v < 0;
    saw_positive = saw_positive || v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.uniform_int(kMin, std::int64_t{0}), 0);
    EXPECT_GE(rng.uniform_int(std::int64_t{0}, kMax), 0);
  }
  // Degenerate one-value ranges at the extremes.
  EXPECT_EQ(rng.uniform_int(kMax, kMax), kMax);
  EXPECT_EQ(rng.uniform_int(kMin, kMin), kMin);
}

TEST(Rng, UniformIntCoversSupport) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.uniform_int(8u)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);  // expected 1000 each; very loose bound
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, LognormalIsPositiveAndSkewed) {
  Rng rng(19);
  double below_median = 0;
  const double median = std::exp(1.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(1.0, 0.8);
    EXPECT_GT(x, 0.0);
    if (x < median) ++below_median;
  }
  EXPECT_NEAR(below_median / 20000.0, 0.5, 0.03);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[2] / 20000.0, 0.6, 0.03);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// --- stats --------------------------------------------------------------------

TEST(SampleSet, EmptyIsAllZero) {
  SampleSet set;
  EXPECT_EQ(set.mean(), 0.0);
  EXPECT_EQ(set.percentile(50), 0.0);
  const Summary s = set.summarize();
  EXPECT_EQ(s.count, 0u);
}

TEST(SampleSet, BasicMoments) {
  SampleSet set;
  set.add_all({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(set.mean(), 3.0);
  EXPECT_DOUBLE_EQ(set.min(), 1.0);
  EXPECT_DOUBLE_EQ(set.max(), 5.0);
  EXPECT_NEAR(set.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SampleSet, PercentileInterpolates) {
  SampleSet set;
  set.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(set.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(set.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(set.percentile(50), 25.0);
}

TEST(SampleSet, TrimmedSummaryDropsTailsButKeepsWhiskers) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(i);
  set.add(10000);  // outlier
  const Summary s = set.summarize_trimmed(8, 92);
  EXPECT_LT(s.mean, 60.0);     // outlier excluded from the bar
  EXPECT_EQ(s.max, 10000.0);   // but shown as the whisker
  EXPECT_EQ(s.min, 1.0);
  EXPECT_LT(s.count, set.size());
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(FrequencyTable, SharesSumToOne) {
  FrequencyTable table;
  table.add("a", 3);
  table.add("b");
  table.add("a");
  EXPECT_EQ(table.count("a"), 4u);
  EXPECT_EQ(table.count("b"), 1u);
  EXPECT_EQ(table.count("missing"), 0u);
  EXPECT_DOUBLE_EQ(table.share("a") + table.share("b"), 1.0);
  EXPECT_EQ(table.keys_by_count().front(), "a");
}

// --- bytes --------------------------------------------------------------------

TEST(Bytes, RoundTripIntegers) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Bytes, TruncatedReadsFail) {
  const std::vector<std::uint8_t> one = {0x42};
  ByteReader r(one);
  EXPECT_FALSE(r.u16().ok());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_FALSE(r.u8().ok());
}

TEST(Bytes, SeekAndPeek) {
  ByteWriter w;
  w.u16(7);
  w.u16(9);
  ByteReader r(w.data());
  EXPECT_EQ(r.peek_u16_at(2).value(), 9);
  EXPECT_TRUE(r.seek(2).ok());
  EXPECT_EQ(r.u16().value(), 9);
  EXPECT_FALSE(r.seek(5).ok());
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(1);
  w.patch_u16(0, 0xbeef);
  EXPECT_EQ(w.data()[0], 0xbe);
  EXPECT_EQ(w.data()[1], 0xef);
  EXPECT_THROW(w.patch_u16(2, 1), std::out_of_range);
}

// --- result -------------------------------------------------------------------

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad(Err("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = Ok();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

// --- strings ------------------------------------------------------------------

TEST(Strings, SplitJoin) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(join({"x", "y"}, "::"), "x::y");
}

TEST(Strings, CaseAndTrim) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_TRUE(ends_with_icase("foo.EXAMPLE.com", "example.COM"));
  EXPECT_FALSE(ends_with_icase("com", "example.com"));
}

TEST(Strings, FmtFixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(10.0, 0), "10");
}

TEST(Strings, AsciiBar) {
  EXPECT_EQ(ascii_bar(5, 10, 10), "#####     ");
  EXPECT_EQ(ascii_bar(10, 10, 4), "####");
  EXPECT_EQ(ascii_bar(0, 10, 4), "    ");
  EXPECT_EQ(ascii_bar(20, 10, 4), "####");   // clamped above
  EXPECT_EQ(ascii_bar(-3, 10, 4), "    ");   // clamped below
  EXPECT_EQ(ascii_bar(1, 0, 4), "    ");     // degenerate max
  EXPECT_EQ(ascii_bar(1, 1, 0), "");
}

}  // namespace
}  // namespace mecdns::util
