// Trace replay across a two-cell MEC deployment.
#include <gtest/gtest.h>

#include <memory>

#include "core/mec_cdn.h"
#include "core/replay.h"
#include "ran/profiles.h"

namespace mecdns::core {
namespace {

using simnet::Ipv4Address;
using simnet::SimTime;

// A compact two-cell world (mirrors the handoff bench topology).
struct ReplayWorld {
  simnet::Simulator sim;
  std::unique_ptr<simnet::Network> net;
  std::unique_ptr<ran::RanSegment> cell_a;
  std::unique_ptr<ran::RanSegment> cell_b;
  std::unique_ptr<MecCdnSite> site_a;
  std::unique_ptr<MecCdnSite> site_b;
  std::unique_ptr<ran::UserEquipment> ue;
  std::unique_ptr<ran::HandoffManager> handoff;
  cdn::ContentCatalog catalog;

  ReplayWorld() {
    net = std::make_unique<simnet::Network>(sim, util::Rng(77));
    const simnet::NodeId backbone =
        net->add_node("bb", Ipv4Address::must_parse("192.0.2.1"));
    const auto cell = [&](const std::string& name, const char* prefix,
                          const char* pgw) {
      ran::RanSegment::Config rc;
      rc.name = name;
      rc.enb_addr = Ipv4Address::must_parse(std::string(prefix) + ".0.1");
      rc.sgw_addr = Ipv4Address::must_parse(std::string(prefix) + ".0.2");
      rc.pgw_addr = Ipv4Address::must_parse(pgw);
      rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
      rc.access = ran::lte();
      auto segment = std::make_unique<ran::RanSegment>(*net, rc);
      net->add_link(segment->pgw(), backbone, ran::wan_link(4.0));
      MecCdnSite::Config sc;
      sc.orchestrator.cluster.name = name + "-mec";
      sc.orchestrator.cluster.node_cidr = simnet::Cidr::must_parse(
          std::string(prefix) + ".64.0/24");
      sc.orchestrator.cluster.service_cidr = simnet::Cidr::must_parse(
          std::string(prefix) + ".128.0/20");
      sc.answer_ttl = 0;
      auto site = std::make_unique<MecCdnSite>(*net, sc);
      net->add_link(segment->pgw(),
                    site->orchestrator().cluster().gateway(),
                    simnet::LatencyModel::constant(SimTime::millis(0.5)));
      return std::make_pair(std::move(segment), std::move(site));
    };
    std::tie(cell_a, site_a) = cell("ca", "10.111", "203.0.113.1");
    std::tie(cell_b, site_b) = cell("cb", "10.112", "203.0.114.1");
    net->add_link(cell_a->pgw(), cell_b->pgw(), ran::wan_link(8.0));

    catalog.add_series(
        dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"), "segment",
        8, 1 << 20);
    site_a->add_delivery_service("demo1", catalog);
    site_b->add_delivery_service("demo1", catalog);

    ue = std::make_unique<ran::UserEquipment>(
        *net, *cell_a, "ue", Ipv4Address::must_parse("10.45.0.2"),
        site_a->ldns_endpoint());
    const simnet::LinkId link_b = net->add_link(
        ue->node(), cell_b->enb(), ran::lte().uplink, ran::lte().downlink);
    net->set_link_up(link_b, false);
    handoff = std::make_unique<ran::HandoffManager>(*net, *ue);
    handoff->add_cell({"ca", cell_a.get(), cell_a->ue_link(ue->node()),
                       site_a->ldns_endpoint()});
    handoff->add_cell({"cb", cell_b.get(), link_b,
                       site_b->ldns_endpoint()});
    handoff->attach(0);
  }
};

TEST(TraceReplay, MobilityPlusRequestsComplete) {
  ReplayWorld world;
  const workload::MobilityTrace mobility =
      workload::parse_mobility_trace("0 0\n10 1\n20 0\n").value();
  const workload::RequestTrace requests =
      workload::synth_requests(world.catalog, 0.8,
                               simnet::SimTime::seconds(30),
                               simnet::SimTime::seconds(1), 5);
  ASSERT_GT(requests.size(), 10u);

  TraceReplayer replayer(*world.ue, world.handoff.get());
  const ReplayOutcome outcome = replayer.run(mobility, requests);

  EXPECT_EQ(outcome.requests, requests.size());
  EXPECT_EQ(outcome.failures, 0u);
  // initial attach + the two real cell changes (the t=0 "0" is a no-op).
  EXPECT_EQ(outcome.handoffs, 3u);
  EXPECT_EQ(outcome.log.size(), requests.size());
  // With re-targeting, latency stays in the local-site band throughout.
  EXPECT_LT(outcome.total_ms.max(), 90.0);
}

TEST(TraceReplay, StickyResolverDegradesAfterMove) {
  const workload::MobilityTrace mobility =
      workload::parse_mobility_trace("0 0\n10 1\n").value();

  const auto run_mode = [&](bool retarget) {
    ReplayWorld world;
    const workload::RequestTrace requests = workload::synth_requests(
        world.catalog, 0.8, simnet::SimTime::seconds(30),
        simnet::SimTime::seconds(1), 5);
    TraceReplayer replayer(*world.ue, world.handoff.get());
    const ReplayOutcome outcome = replayer.run(mobility, requests, retarget);
    // Mean latency of requests after the move (t > 10s).
    util::SampleSet late;
    for (const auto& record : outcome.log) {
      if (record.ok && record.at > simnet::SimTime::seconds(10)) {
        late.add(record.total_ms);
      }
    }
    return late.mean();
  };

  const double retarget_mean = run_mode(true);
  const double sticky_mean = run_mode(false);
  EXPECT_GT(sticky_mean, retarget_mean + 20.0);
}

TEST(TraceReplay, NoHandoffManagerStillReplaysRequests) {
  ReplayWorld world;
  const workload::RequestTrace requests = workload::synth_requests(
      world.catalog, 0.8, simnet::SimTime::seconds(10),
      simnet::SimTime::seconds(1), 9);
  TraceReplayer replayer(*world.ue, nullptr);
  const ReplayOutcome outcome =
      replayer.run(workload::synth_commute(simnet::SimTime::seconds(10),
                                           simnet::SimTime::seconds(2), 2, 1),
                   requests);
  EXPECT_EQ(outcome.requests, requests.size());
  EXPECT_EQ(outcome.handoffs, 0u);
}

}  // namespace
}  // namespace mecdns::core
