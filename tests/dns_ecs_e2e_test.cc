// End-to-end ECS (RFC 7871) through a shared recursive resolver: two
// clients in different subnets query the same CDN name via one resolver;
// with ECS the router localizes each to its own cache group, and the
// resolver must not serve one client's scoped answer to the other.
#include <gtest/gtest.h>

#include "cdn/traffic_router.h"
#include "dns/hierarchy.h"
#include "dns/recursive.h"
#include "dns/stub.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class EcsEndToEndTest : public ::testing::Test {
 protected:
  EcsEndToEndTest() : net_(sim_, util::Rng(131)) {
    backbone_ = net_.add_node("backbone", Ipv4Address::must_parse("192.0.2.1"));
    hierarchy_ = std::make_unique<PublicDnsHierarchy>(
        net_, backbone_, LatencyModel::constant(SimTime::millis(5)),
        LatencyModel::constant(SimTime::micros(300)));
    hierarchy_->ensure_tld("test", Ipv4Address::must_parse("199.7.50.1"),
                           LatencyModel::constant(SimTime::millis(5)));

    // ECS-aware Traffic Router: east clients -> east cache, west -> west.
    const auto router_addr = Ipv4Address::must_parse("198.51.100.53");
    const simnet::NodeId router_node = net_.add_node("cdns", router_addr);
    net_.add_link(router_node, backbone_,
                  LatencyModel::constant(SimTime::millis(5)));
    cdn::TrafficRouter::Config rc;
    rc.cdn_domain = DnsName::must_parse("cdn.test");
    rc.answer_ttl = 300;  // long TTL: caching WOULD leak without scoping
    rc.use_ecs = true;
    router_ = std::make_unique<cdn::TrafficRouter>(
        net_, router_node, "cdns",
        LatencyModel::constant(SimTime::micros(500)), rc, router_addr);
    router_->add_cache("east", cdn::CacheInfo{
        "east-0", Ipv4Address::must_parse("198.18.1.1"), true});
    router_->add_cache("west", cdn::CacheInfo{
        "west-0", Ipv4Address::must_parse("198.18.2.1"), true});
    router_->coverage().add(simnet::Cidr::must_parse("10.10.0.0/16"), "east");
    router_->coverage().add(simnet::Cidr::must_parse("10.20.0.0/16"), "west");
    router_->coverage().set_default_group("east");
    router_->add_delivery_service(cdn::DeliveryService{
        "vod", DnsName::must_parse("vod.cdn.test"), {"east", "west"}});
    hierarchy_->delegate_to(DnsName::must_parse("cdn.test"),
                            DnsName::must_parse("ns1.cdn.test"), router_addr);

    // Shared resolver with ECS forwarding.
    const auto resolver_addr = Ipv4Address::must_parse("10.53.0.53");
    const simnet::NodeId resolver_node =
        net_.add_node("resolver", resolver_addr);
    net_.add_link(resolver_node, backbone_,
                  LatencyModel::constant(SimTime::millis(2)));
    RecursiveResolver::Config config;
    config.root_servers = hierarchy_->root_hints();
    config.ecs_mode = EcsMode::kForward;
    resolver_ = std::make_unique<RecursiveResolver>(
        net_, resolver_node, "resolver",
        LatencyModel::constant(SimTime::micros(300)), config);

    east_client_ = net_.add_node("east-client",
                                 Ipv4Address::must_parse("10.10.0.2"));
    west_client_ = net_.add_node("west-client",
                                 Ipv4Address::must_parse("10.20.0.2"));
    net_.add_link(east_client_, resolver_node,
                  LatencyModel::constant(SimTime::millis(1)));
    net_.add_link(west_client_, resolver_node,
                  LatencyModel::constant(SimTime::millis(1)));
  }

  StubResult resolve_from(simnet::NodeId client) {
    StubResolver stub(net_, client,
                      Endpoint{Ipv4Address::must_parse("10.53.0.53"),
                               kDnsPort});
    StubResult out;
    stub.resolve(DnsName::must_parse("movie.vod.cdn.test"), RecordType::kA,
                 [&](const StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId backbone_;
  simnet::NodeId east_client_;
  simnet::NodeId west_client_;
  std::unique_ptr<PublicDnsHierarchy> hierarchy_;
  std::unique_ptr<cdn::TrafficRouter> router_;
  std::unique_ptr<RecursiveResolver> resolver_;
};

TEST_F(EcsEndToEndTest, EachSubnetGetsItsOwnCache) {
  const StubResult east = resolve_from(east_client_);
  const StubResult west = resolve_from(west_client_);
  ASSERT_TRUE(east.ok);
  ASSERT_TRUE(west.ok);
  EXPECT_EQ(*east.address, Ipv4Address::must_parse("198.18.1.1"));
  EXPECT_EQ(*west.address, Ipv4Address::must_parse("198.18.2.1"));
}

TEST_F(EcsEndToEndTest, ScopedAnswersAreNotCachedAcrossSubnets) {
  resolve_from(east_client_);
  const auto upstream_after_east = resolver_->upstream_queries();
  // The west client's query MUST go upstream again: the east answer was
  // scoped (scope_prefix > 0) and may not be reused.
  const StubResult west = resolve_from(west_client_);
  EXPECT_GT(resolver_->upstream_queries(), upstream_after_east);
  EXPECT_EQ(*west.address, Ipv4Address::must_parse("198.18.2.1"));
}

TEST_F(EcsEndToEndTest, WithoutEcsBothSubnetsShareTheResolverView) {
  resolver_->set_ecs_mode(EcsMode::kOff);
  router_->set_use_ecs(false);
  const StubResult east = resolve_from(east_client_);
  const StubResult west = resolve_from(west_client_);
  ASSERT_TRUE(east.ok);
  ASSERT_TRUE(west.ok);
  // Resolver-based localization: both land wherever the resolver's address
  // maps (default group), and the second answer comes from the cache.
  EXPECT_EQ(*east.address, *west.address);
  const auto upstream_after = resolver_->upstream_queries();
  resolve_from(west_client_);
  EXPECT_EQ(resolver_->upstream_queries(), upstream_after);  // cached
}

TEST_F(EcsEndToEndTest, ClientSuppliedEcsIsForwardedAndEchoed) {
  // A client that sends its own ECS (RFC 7871 stub behaviour): the resolver
  // forwards it verbatim upstream and echoes it in the answer. Note a
  // client that sends no EDNS gets no EDNS back — the synthesized upstream
  // option stays between resolver and authoritative.
  StubResolver stub(net_, west_client_,
                    Endpoint{Ipv4Address::must_parse("10.53.0.53"),
                             kDnsPort});
  ClientSubnet ecs;
  ecs.address = Ipv4Address::must_parse("10.10.0.0");  // claims the EAST net
  ecs.source_prefix = 16;
  StubResult out;
  stub.resolve_with_ecs(DnsName::must_parse("movie.vod.cdn.test"),
                        RecordType::kA, ecs,
                        [&](const StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);
  // Localized by the *claimed* subnet, not the sender's: east cache.
  EXPECT_EQ(*out.address, Ipv4Address::must_parse("198.18.1.1"));
  ASSERT_TRUE(out.response.edns.has_value());
  ASSERT_TRUE(out.response.edns->client_subnet.has_value());
  EXPECT_EQ(out.response.edns->client_subnet->subnet().to_string(),
            "10.10.0.0/16");
}

TEST_F(EcsEndToEndTest, NoEdnsInAnswerWhenClientSentNone) {
  const StubResult east = resolve_from(east_client_);
  ASSERT_TRUE(east.ok);
  EXPECT_FALSE(east.response.edns.has_value());
}

}  // namespace
}  // namespace mecdns::dns
