// Stub resolver behaviours: multicast racing and CNAME chasing.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "dns/stub.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class StubTest : public ::testing::Test {
 protected:
  StubTest() : net_(sim_, util::Rng(55)) {
    client_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));

    // "fast" server: 1ms away, authoritative for fast.test, refuses others.
    fast_node_ = net_.add_node("fast", Ipv4Address::must_parse("10.0.0.2"));
    net_.add_link(client_, fast_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    fast_ = std::make_unique<AuthoritativeServer>(
        net_, fast_node_, "fast",
        LatencyModel::constant(SimTime::micros(100)));
    Zone& fast_zone = fast_->add_zone(DnsName::must_parse("fast.test"));
    fast_zone.must_add(make_a(DnsName::must_parse("www.fast.test"),
                              Ipv4Address::must_parse("198.18.1.1"), 30));
    fast_zone.must_add(make_cname(DnsName::must_parse("hop.fast.test"),
                                  DnsName::must_parse("www.slow.test"), 30));

    // "slow" server: 20ms away, authoritative for slow.test AND fast.test
    // (returns a different answer for the shared name).
    slow_node_ = net_.add_node("slow", Ipv4Address::must_parse("10.0.0.3"));
    net_.add_link(client_, slow_node_,
                  LatencyModel::constant(SimTime::millis(20)));
    slow_ = std::make_unique<AuthoritativeServer>(
        net_, slow_node_, "slow",
        LatencyModel::constant(SimTime::micros(100)));
    Zone& slow_fast_zone = slow_->add_zone(DnsName::must_parse("fast.test"));
    slow_fast_zone.must_add(make_a(DnsName::must_parse("www.fast.test"),
                                   Ipv4Address::must_parse("198.18.2.2"),
                                   30));
    Zone& slow_zone = slow_->add_zone(DnsName::must_parse("slow.test"));
    slow_zone.must_add(make_a(DnsName::must_parse("www.slow.test"),
                              Ipv4Address::must_parse("198.18.3.3"), 30));

    stub_ = std::make_unique<StubResolver>(
        net_, client_, Endpoint{Ipv4Address::must_parse("10.0.0.2"),
                                kDnsPort});
  }

  StubResult resolve(const std::string& name) {
    StubResult out;
    stub_->resolve(DnsName::must_parse(name), RecordType::kA,
                   [&](const StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_;
  simnet::NodeId fast_node_;
  simnet::NodeId slow_node_;
  std::unique_ptr<AuthoritativeServer> fast_;
  std::unique_ptr<AuthoritativeServer> slow_;
  std::unique_ptr<StubResolver> stub_;
};

TEST_F(StubTest, MulticastFirstAnswerWins) {
  stub_->set_secondary(Endpoint{Ipv4Address::must_parse("10.0.0.3"),
                                kDnsPort});
  const StubResult result = resolve("www.fast.test");
  ASSERT_TRUE(result.ok);
  // Both servers answer; the near one wins the race.
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.1.1"));
  EXPECT_EQ(result.answered_by, 0);
  EXPECT_LT(result.latency, SimTime::millis(5));
}

TEST_F(StubTest, MulticastRefusedLosesToRealAnswer) {
  stub_->set_secondary(Endpoint{Ipv4Address::must_parse("10.0.0.3"),
                                kDnsPort});
  // Only the slow server knows slow.test; the fast one REFUSES instantly.
  const StubResult result = resolve("www.slow.test");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.3.3"));
  EXPECT_EQ(result.answered_by, 1);
  EXPECT_GT(result.latency, SimTime::millis(35));
}

TEST_F(StubTest, MulticastBothRefuseReportsRefusal) {
  stub_->set_secondary(Endpoint{Ipv4Address::must_parse("10.0.0.3"),
                                kDnsPort});
  const StubResult result = resolve("www.nowhere.org");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.rcode, RCode::kRefused);
}

TEST_F(StubTest, MulticastSurvivesDeadPrimary) {
  net_.set_node_up(fast_node_, false);
  StubResolver stub(net_, client_,
                    Endpoint{Ipv4Address::must_parse("10.0.0.2"), kDnsPort},
                    DnsTransport::Options{SimTime::millis(200), 0});
  stub.set_secondary(Endpoint{Ipv4Address::must_parse("10.0.0.3"), kDnsPort});
  StubResult out;
  stub.resolve(DnsName::must_parse("www.slow.test"), RecordType::kA,
               [&](const StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.answered_by, 1);
}

TEST_F(StubTest, ChaseFollowsCrossServerCname) {
  // hop.fast.test -> CNAME www.slow.test, out of the fast server's zones.
  stub_->set_secondary(Endpoint{Ipv4Address::must_parse("10.0.0.3"),
                                kDnsPort});
  stub_->set_chase_cnames(true);
  const StubResult result = resolve("hop.fast.test");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.3.3"));
  // Latency accumulates across both legs.
  EXPECT_GT(result.latency, SimTime::millis(40));
}

TEST_F(StubTest, NoChaseReturnsBareCname) {
  const StubResult result = resolve("hop.fast.test");
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.address.has_value());
}

TEST_F(StubTest, RetargetSwitchesServers) {
  EXPECT_EQ(*resolve("www.fast.test").address,
            Ipv4Address::must_parse("198.18.1.1"));
  stub_->set_server(Endpoint{Ipv4Address::must_parse("10.0.0.3"), kDnsPort});
  // Same name, different authority now answers with its own record.
  EXPECT_EQ(*resolve("www.fast.test").address,
            Ipv4Address::must_parse("198.18.2.2"));
}

}  // namespace
}  // namespace mecdns::dns
