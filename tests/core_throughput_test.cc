// Throughput runner: worker-count-independent byte-identical artifacts,
// sane load metrics, and (this binary links obs/alloc_hooks.cc) the
// counting-allocator path end to end.
#include "core/throughput.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/perf.h"

namespace mecdns {
namespace {

core::ThroughputConfig small_config() {
  core::ThroughputConfig config;
  config.deployments = {core::Fig5Deployment::kMecLdnsMecCdns,
                        core::Fig5Deployment::kProviderLdns};
  config.ues = 2000;
  config.rate_hz = 0.05;
  config.duration_s = 3.0;
  config.seed = 7;
  return config;
}

std::vector<core::ThroughputResult> results_of(
    const std::vector<core::JobOutcome<core::ThroughputOutput>>& outcomes) {
  std::vector<core::ThroughputResult> rows;
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok) << outcome.error;
    rows.push_back(outcome.value.result);
  }
  return rows;
}

TEST(Fig5SlugTest, RoundTripsEveryDeployment) {
  for (core::Fig5Deployment d : core::all_fig5_deployments()) {
    const std::string slug = core::fig5_slug(d);
    EXPECT_NE(slug, "unknown");
    core::Fig5Deployment parsed;
    ASSERT_TRUE(core::fig5_from_slug(slug, parsed)) << slug;
    EXPECT_EQ(parsed, d);
  }
  core::Fig5Deployment parsed;
  EXPECT_FALSE(core::fig5_from_slug("no-such-deployment", parsed));
}

TEST(ThroughputTest, AllocCountingIsActiveInThisBinary) {
  ASSERT_TRUE(obs::alloc_counting_active());
  const obs::PerfSnapshot before = obs::PerfSnapshot::take();
  // Direct operator-new call: unlike a new-expression, not elidable, so
  // the optimizer cannot fold away the allocation being counted.
  void* p = ::operator new(256);
  const auto delta = before.delta();
  ::operator delete(p);
  EXPECT_GE(delta.allocs, 1u);
  EXPECT_GE(delta.alloc_bytes, 256u);
}

TEST(ThroughputTest, LoadRunProducesSaneMetrics) {
  core::ThroughputConfig config = small_config();
  const auto outcomes = core::run_throughput(config);
  ASSERT_EQ(outcomes.size(), 2u);
  const auto rows = results_of(outcomes);

  EXPECT_EQ(rows[0].scenario, "mec-mec");
  EXPECT_EQ(rows[1].scenario, "provider");
  for (const auto& r : rows) {
    // 2000 UEs x 0.05 Hz x 3 s = ~300 queries; demand the right ballpark.
    EXPECT_GT(r.queries, 200u);
    EXPECT_LT(r.queries, 400u);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_GT(r.qps_sim, 0.0);
    EXPECT_GT(r.events_per_query, 1.0);
    EXPECT_GT(r.dns_encoded_per_query, 0.0);
    EXPECT_GT(r.wire_bytes_per_query, 0.0);
    EXPECT_GT(r.p50_ms, 0.0);
    EXPECT_GE(r.p99_ms, r.p50_ms);
    EXPECT_GT(r.peak_queue_depth, 0u);
    EXPECT_TRUE(r.alloc_counted);
    EXPECT_GT(r.allocs_per_query, 1.0);
    EXPECT_GT(r.alloc_bytes_per_query, r.allocs_per_query);
    // PR 7 allocation-elimination baseline (arena codec, inline names,
    // pooled events, flat maps): ~34-35 allocs and ~5.5-6.7 KB per query.
    // The ceilings leave headroom for small feature drift but trip well
    // before the pre-arena world (274 allocs, ~21 KB) can sneak back.
    EXPECT_LT(r.allocs_per_query, 120.0);
    EXPECT_LT(r.alloc_bytes_per_query, 12000.0);
  }
  // The paper's ordering: the MEC path answers faster than the provider
  // path, under load just as in the 32-query measurements.
  EXPECT_LT(rows[0].p50_ms, rows[1].p50_ms);
}

TEST(ThroughputTest, ArtifactsAreByteIdenticalAcrossWorkerCounts) {
  std::string json_1worker;
  std::vector<std::string> metrics_1worker;
  for (std::size_t workers : {1u, 2u, 8u}) {
    core::ThroughputConfig config = small_config();
    config.workers = workers;
    const auto outcomes = core::run_throughput(config);
    ASSERT_EQ(outcomes.size(), 2u);
    const std::string json = core::throughput_json(results_of(outcomes));
    std::vector<std::string> metrics;
    for (const auto& outcome : outcomes) {
      metrics.push_back(outcome.value.metrics.to_json());
    }
    if (workers == 1) {
      json_1worker = json;
      metrics_1worker = metrics;
      continue;
    }
    EXPECT_EQ(json, json_1worker) << "workers=" << workers;
    EXPECT_EQ(metrics, metrics_1worker) << "workers=" << workers;
  }
  // The deterministic artifact must never leak wall-clock numbers.
  EXPECT_EQ(json_1worker.find("wall"), std::string::npos);
  EXPECT_NE(json_1worker.find("\"allocs_per_query\""), std::string::npos);
}

TEST(ThroughputTest, WallJsonCarriesTheMachineDependentSide) {
  core::ThroughputConfig config = small_config();
  config.deployments = {core::Fig5Deployment::kMecLdnsMecCdns};
  config.ues = 500;
  const auto outcomes = core::run_throughput(config);
  const auto rows = results_of(outcomes);
  const std::string wall = core::throughput_wall_json(rows, 4);
  EXPECT_NE(wall.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(wall.find("\"qps_wall\""), std::string::npos);
  EXPECT_NE(wall.find("\"workers\": 4"), std::string::npos);
  EXPECT_GT(rows[0].wall_ms, 0.0);
}

TEST(ThroughputTest, ClosedLoopModeRuns) {
  core::ThroughputConfig config = small_config();
  config.deployments = {core::Fig5Deployment::kMecLdnsMecCdns};
  config.ues = 500;
  config.closed_loop = true;
  config.think_s = 0.5;
  const auto outcomes = core::run_throughput(config);
  const auto rows = results_of(outcomes);
  EXPECT_GT(rows[0].queries, 0u);
  EXPECT_EQ(rows[0].failures, 0u);
}

}  // namespace
}  // namespace mecdns
