// RAN substrate tests: access profiles, the NAT'ing P-GW, the DNS tap, the
// UE and handoff.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "ran/handoff.h"
#include "ran/profiles.h"
#include "ran/segment.h"
#include "ran/tap.h"
#include "ran/ue.h"
#include "util/stats.h"

namespace mecdns::ran {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

TEST(Profiles, LteIsSlowerAndMoreVariableThanWired) {
  util::Rng rng(1);
  util::SampleSet lte_samples;
  util::SampleSet wired_samples;
  const AccessProfile lte_profile = lte();
  const AccessProfile wired_profile = wired_campus();
  for (int i = 0; i < 5000; ++i) {
    lte_samples.add(lte_profile.uplink.sample(rng).to_millis());
    wired_samples.add(wired_profile.uplink.sample(rng).to_millis());
  }
  EXPECT_GT(lte_samples.mean(), 8.0);
  EXPECT_LT(lte_samples.mean(), 13.0);
  EXPECT_LT(wired_samples.mean(), 0.5);
  EXPECT_GT(lte_samples.stddev(), 5 * wired_samples.stddev());
}

TEST(Profiles, FiveGBeatsLte) {
  util::Rng rng(2);
  const AccessProfile nr = nr5g();
  const AccessProfile lte_profile = lte();
  double nr_sum = 0;
  double lte_sum = 0;
  for (int i = 0; i < 2000; ++i) {
    nr_sum += nr.uplink.sample(rng).to_millis();
    lte_sum += lte_profile.uplink.sample(rng).to_millis();
  }
  EXPECT_LT(nr_sum * 4, lte_sum);  // 5G at least 4x faster
}

class SegmentTest : public ::testing::Test {
 protected:
  SegmentTest() : net_(sim_, util::Rng(7)) {
    RanSegment::Config config;
    config.name = "lte";
    config.enb_addr = Ipv4Address::must_parse("10.100.0.1");
    config.sgw_addr = Ipv4Address::must_parse("10.100.0.2");
    config.pgw_addr = Ipv4Address::must_parse("203.0.113.1");
    config.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
    config.access = AccessProfile{
        "fixed", LatencyModel::constant(SimTime::millis(10)),
        LatencyModel::constant(SimTime::millis(10))};
    segment_ = std::make_unique<RanSegment>(net_, config);

    server_node_ =
        net_.add_node("server", Ipv4Address::must_parse("198.51.100.1"));
    net_.add_link(segment_->pgw(), server_node_,
                  LatencyModel::constant(SimTime::millis(1)));
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  std::unique_ptr<RanSegment> segment_;
  simnet::NodeId server_node_;
};

TEST_F(SegmentTest, UplinkSourceIsNatted) {
  const simnet::NodeId ue =
      segment_->attach_ue("ue", Ipv4Address::must_parse("10.45.0.2"));
  Endpoint seen_src;
  net_.open_socket(server_node_, 80, [&](const simnet::Packet& p) {
    seen_src = p.src;
  });
  net_.open_socket(ue, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("198.51.100.1"), 80}, {1});
  sim_.run();
  // The server sees the P-GW's public address, never the UE's.
  EXPECT_EQ(seen_src.addr, Ipv4Address::must_parse("203.0.113.1"));
  EXPECT_GE(seen_src.port, 20000);
  EXPECT_EQ(segment_->nat_entries(), 1u);
}

TEST_F(SegmentTest, ReplyIsTranslatedBackToUe) {
  const simnet::NodeId ue =
      segment_->attach_ue("ue", Ipv4Address::must_parse("10.45.0.2"));
  net_.open_socket(server_node_, 80, [&](const simnet::Packet& p) {
    // Echo back to whoever we saw (the NAT'd endpoint).
    net_.open_socket(server_node_, 0, nullptr)->send_to(p.src, {9});
  });
  bool ue_got_reply = false;
  simnet::UdpSocket* ue_socket = net_.open_socket(
      ue, 0, [&](const simnet::Packet&) { ue_got_reply = true; });
  ue_socket->send_to(Endpoint{Ipv4Address::must_parse("198.51.100.1"), 80},
                     {1});
  sim_.run();
  EXPECT_TRUE(ue_got_reply);
}

TEST_F(SegmentTest, UnsolicitedInboundDropped) {
  segment_->attach_ue("ue", Ipv4Address::must_parse("10.45.0.2"));
  // A packet to the P-GW public address on an unmapped port: dropped.
  net_.open_socket(server_node_, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("203.0.113.1"), 31337}, {1});
  sim_.run();
  EXPECT_EQ(net_.stats().dropped_by_hook, 1u);
}

TEST_F(SegmentTest, TwoUesGetDistinctNatPorts) {
  const simnet::NodeId ue1 =
      segment_->attach_ue("ue1", Ipv4Address::must_parse("10.45.0.2"));
  const simnet::NodeId ue2 =
      segment_->attach_ue("ue2", Ipv4Address::must_parse("10.45.0.3"));
  std::set<std::uint16_t> ports;
  net_.open_socket(server_node_, 80, [&](const simnet::Packet& p) {
    ports.insert(p.src.port);
  });
  net_.open_socket(ue1, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("198.51.100.1"), 80}, {1});
  net_.open_socket(ue2, 0, nullptr)
      ->send_to(Endpoint{Ipv4Address::must_parse("198.51.100.1"), 80}, {1});
  sim_.run();
  EXPECT_EQ(ports.size(), 2u);
  EXPECT_EQ(segment_->nat_entries(), 2u);
}

TEST_F(SegmentTest, UeOutsideSubnetRejected) {
  EXPECT_THROW(
      segment_->attach_ue("bad", Ipv4Address::must_parse("192.168.1.1")),
      std::invalid_argument);
}

TEST_F(SegmentTest, DnsTapRecordsCrossings) {
  const simnet::NodeId ue =
      segment_->attach_ue("ue", Ipv4Address::must_parse("10.45.0.2"));
  DnsTap tap(net_, segment_->pgw());

  // A DNS server beyond the P-GW.
  auto server = std::make_unique<dns::AuthoritativeServer>(
      net_, server_node_, "auth", LatencyModel::constant(SimTime::millis(5)));
  dns::Zone& zone = server->add_zone(dns::DnsName::must_parse("example.com"));
  zone.must_add(dns::make_a(dns::DnsName::must_parse("www.example.com"),
                            Ipv4Address::must_parse("198.18.0.1"), 60));

  dns::StubResolver stub(net_, ue,
                         Endpoint{Ipv4Address::must_parse("198.51.100.1"),
                                  dns::kDnsPort});
  dns::StubResult out;
  stub.resolve(dns::DnsName::must_parse("www.example.com"),
               dns::RecordType::kA,
               [&](const dns::StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);

  const auto crossing =
      tap.crossing(out.response.header.id, "www.example.com");
  ASSERT_TRUE(crossing.has_value());
  ASSERT_TRUE(crossing->has_query);
  ASSERT_TRUE(crossing->has_response);
  // Query crossed after ~10.3ms (air+fronthaul+core), response ~2ms+5ms
  // processing later.
  const double beyond_ms =
      (crossing->response_seen - crossing->query_seen).to_millis();
  EXPECT_NEAR(beyond_ms, 7.0, 0.5);
  // Total = 2x10.6 wireless/core + beyond.
  EXPECT_NEAR(out.latency.to_millis() - beyond_ms, 21.2, 1.0);
  EXPECT_EQ(tap.observed_queries(), 1u);
  EXPECT_EQ(tap.observed_responses(), 1u);
}

TEST_F(SegmentTest, DnsTapFilterExcludesTraffic) {
  const simnet::NodeId ue =
      segment_->attach_ue("ue", Ipv4Address::must_parse("10.45.0.2"));
  DnsTap tap(net_, segment_->pgw(),
             [](const simnet::Packet&) { return false; });
  dns::StubResolver stub(
      net_, ue,
      Endpoint{Ipv4Address::must_parse("198.51.100.1"), dns::kDnsPort},
      dns::DnsTransport::Options{SimTime::millis(50), 0});
  stub.resolve(dns::DnsName::must_parse("www.example.com"),
               dns::RecordType::kA, [](const dns::StubResult&) {});
  sim_.run();
  EXPECT_EQ(tap.observed_queries(), 0u);
}

TEST_F(SegmentTest, UserEquipmentFetchFailsCleanlyWithoutServers) {
  UserEquipment ue(net_, *segment_, "ue",
                   Ipv4Address::must_parse("10.45.0.2"),
                   Endpoint{Ipv4Address::must_parse("198.51.100.1"),
                            dns::kDnsPort},
                   dns::DnsTransport::Options{SimTime::millis(100), 0});
  bool done = false;
  ue.resolve_and_fetch(cdn::Url::must_parse("video.mycdn.test/x"),
                       [&](const UserEquipment::FetchOutcome& outcome) {
                         done = true;
                         EXPECT_FALSE(outcome.ok);
                         EXPECT_FALSE(outcome.error.empty());
                       });
  sim_.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace mecdns::ran
