// Trace sampling tests: deterministic head sampling by seeded hash,
// tail-based retention for slow/failed lookups, and bounded sink growth on
// large runs.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "obs/trace.h"
#include "simnet/simulator.h"

namespace mecdns::obs {
namespace {

using simnet::SimTime;

TraceSink::SamplingConfig sampled(double rate, std::uint64_t seed) {
  TraceSink::SamplingConfig config;
  config.head_rate = rate;
  config.seed = seed;
  config.keep_slower_than = SimTime::millis(20);
  return config;
}

/// Runs `n` instant roots named q0..q(n-1) through the sink and returns
/// the names that survived.
std::set<std::string> kept_roots(TraceSink& sink, int n) {
  for (int i = 0; i < n; ++i) {
    const SpanId id = sink.begin(0, "stub", "q" + std::to_string(i));
    sink.end(id);
  }
  std::set<std::string> kept;
  for (const auto& span : sink.spans()) {
    if (span.id != 0) kept.insert(span.name);
  }
  return kept;
}

TEST(TraceSamplingTest, SameSeedKeepsTheSameRoots) {
  simnet::Simulator sim;
  TraceSink a(sim);
  a.set_sampling(sampled(0.3, 7));
  TraceSink b(sim);
  b.set_sampling(sampled(0.3, 7));

  const auto kept_a = kept_roots(a, 200);
  const auto kept_b = kept_roots(b, 200);
  EXPECT_EQ(kept_a, kept_b);
  // Rate 0.3 keeps a nontrivial strict subset.
  EXPECT_GT(kept_a.size(), 0u);
  EXPECT_LT(kept_a.size(), 200u);
  EXPECT_EQ(a.roots_seen(), 200u);
  EXPECT_EQ(a.roots_seen() - a.roots_dropped(), kept_a.size());
}

TEST(TraceSamplingTest, DifferentSeedsKeepDifferentRoots) {
  simnet::Simulator sim;
  TraceSink a(sim);
  a.set_sampling(sampled(0.3, 7));
  TraceSink b(sim);
  b.set_sampling(sampled(0.3, 8));
  EXPECT_NE(kept_roots(a, 200), kept_roots(b, 200));
}

TEST(TraceSamplingTest, RateOneIsByteIdenticalToUnsampled) {
  simnet::Simulator sim;
  TraceSink plain(sim);
  TraceSink full(sim);
  full.set_sampling(sampled(1.0, 42));

  for (TraceSink* sink : {&plain, &full}) {
    for (int i = 0; i < 20; ++i) {
      const SpanId root = sink->begin(0, "stub", "q" + std::to_string(i));
      const SpanId child = sink->begin(root, "transport", "rpc");
      sink->add_tag(child, "server", "10.0.0.1");
      sink->end(child);
      sink->end(root);
    }
  }
  EXPECT_EQ(full.to_chrome_trace(), plain.to_chrome_trace());
  EXPECT_EQ(full.size(), plain.size());
  EXPECT_EQ(full.roots_dropped(), 0u);
}

TEST(TraceSamplingTest, TailKeepsSlowRoots) {
  simnet::Simulator sim;
  TraceSink sink(sim);
  sink.set_sampling(sampled(0.0, 1));  // head drops everything

  SpanId slow = 0;
  SpanId fast = 0;
  sim.schedule_at(SimTime::zero(), [&] {
    slow = sink.begin(0, "stub", "slow lookup");
    fast = sink.begin(0, "stub", "fast lookup");
  });
  sim.schedule_at(SimTime::millis(5), [&] { sink.end(fast); });
  sim.schedule_at(SimTime::millis(25), [&] { sink.end(slow); });
  sim.run();

  EXPECT_EQ(sink.size(), 1u);
  ASSERT_NE(sink.find(slow), nullptr);
  EXPECT_EQ(sink.find(slow)->name, "slow lookup");
  EXPECT_EQ(sink.find(fast), nullptr);
  EXPECT_EQ(sink.roots_dropped(), 1u);
}

TEST(TraceSamplingTest, ForceKeepOnAChildRetainsTheWholeTree) {
  simnet::Simulator sim;
  TraceSink sink(sim);
  sink.set_sampling(sampled(0.0, 1));

  // A failed lookup: the component calls keep() on its (child) span.
  const SpanId root = sink.begin(0, "stub", "failed lookup");
  const SpanId child = sink.begin(root, "transport", "rpc");
  sink.force_keep(child);  // what SpanRef::keep() calls
  sink.end(child);
  sink.end(root);

  // A plain fast lookup: dropped.
  const SpanId boring = sink.begin(0, "stub", "boring lookup");
  sink.end(boring);

  EXPECT_EQ(sink.size(), 2u);
  EXPECT_NE(sink.find(root), nullptr);
  EXPECT_NE(sink.find(child), nullptr);
  EXPECT_EQ(sink.find(boring), nullptr);
}

TEST(TraceSamplingTest, DroppedSubtreesReleaseTheirSlots) {
  simnet::Simulator sim;
  TraceSink sink(sim);
  sink.set_sampling(sampled(0.0, 1));

  for (int i = 0; i < 1000; ++i) {
    const SpanId root = sink.begin(0, "stub", "q" + std::to_string(i));
    const SpanId child = sink.begin(root, "transport", "rpc");
    sink.end(child);
    sink.end(root);
  }
  EXPECT_EQ(sink.roots_seen(), 1000u);
  EXPECT_EQ(sink.roots_dropped(), 1000u);
  EXPECT_EQ(sink.size(), 0u);
  // The raw store reuses reclaimed slots instead of growing per root.
  EXPECT_LE(sink.spans().size(), 4u);
}

TEST(TraceSamplingTest, UnfinishedCountsOnlyLiveOpenSpans) {
  simnet::Simulator sim;
  TraceSink sink(sim);
  const SpanId root = sink.begin(0, "stub", "q");
  const SpanId child = sink.begin(root, "transport", "rpc");
  sink.end(child);
  EXPECT_EQ(sink.unfinished(), 1u);
  sink.end(root);
  EXPECT_EQ(sink.unfinished(), 0u);
}

TEST(TraceSamplingTest, ClearResetsSamplingState) {
  simnet::Simulator sim;
  TraceSink sink(sim);
  sink.set_sampling(sampled(0.0, 1));
  const SpanId root = sink.begin(0, "stub", "q0");
  sink.end(root);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.roots_seen(), 0u);
  EXPECT_EQ(sink.roots_dropped(), 0u);
  // Ids restart from 1, exactly like a fresh sink.
  const SpanId again = sink.begin(0, "stub", "q0");
  EXPECT_EQ(again, 1u);
  sink.end(again);
}

}  // namespace
}  // namespace mecdns::obs
