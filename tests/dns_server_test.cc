// Authoritative server behaviour over the simulated network.
#include <gtest/gtest.h>

#include "dns/server.h"
#include "dns/stub.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class AuthServerTest : public ::testing::Test {
 protected:
  AuthServerTest() : net_(sim_, util::Rng(5)) {
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    server_node_ = net_.add_node("server", Ipv4Address::must_parse("10.0.0.2"));
    net_.add_link(client_node_, server_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    server_ = std::make_unique<AuthoritativeServer>(
        net_, server_node_, "auth",
        LatencyModel::constant(SimTime::micros(500)));
    Zone& zone = server_->add_zone(DnsName::must_parse("example.com"));
    zone.must_add(make_soa(DnsName::must_parse("example.com"),
                           DnsName::must_parse("ns1.example.com"), 1, 300,
                           3600));
    zone.must_add(make_a(DnsName::must_parse("www.example.com"),
                         Ipv4Address::must_parse("198.18.0.1"), 60));
    zone.must_add(make_cname(DnsName::must_parse("alias.example.com"),
                             DnsName::must_parse("www.example.com"), 60));
    zone.must_add(make_cname(DnsName::must_parse("hop1.example.com"),
                             DnsName::must_parse("hop2.example.com"), 60));
    zone.must_add(make_cname(DnsName::must_parse("hop2.example.com"),
                             DnsName::must_parse("www.example.com"), 60));
    zone.must_add(make_cname(DnsName::must_parse("loop-a.example.com"),
                             DnsName::must_parse("loop-b.example.com"), 60));
    zone.must_add(make_cname(DnsName::must_parse("loop-b.example.com"),
                             DnsName::must_parse("loop-a.example.com"), 60));
    zone.must_add(make_cname(DnsName::must_parse("away.example.com"),
                             DnsName::must_parse("elsewhere.net"), 60));
    stub_ = std::make_unique<StubResolver>(
        net_, client_node_, Endpoint{Ipv4Address::must_parse("10.0.0.2"),
                                     kDnsPort});
  }

  StubResult resolve(const std::string& name,
                     RecordType type = RecordType::kA) {
    StubResult out;
    stub_->resolve(DnsName::must_parse(name), type,
                   [&](const StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  simnet::NodeId server_node_;
  std::unique_ptr<AuthoritativeServer> server_;
  std::unique_ptr<StubResolver> stub_;
};

TEST_F(AuthServerTest, AnswersARecord) {
  const StubResult result = resolve("www.example.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.0.1"));
  EXPECT_TRUE(result.response.header.aa);
  // latency = 2ms RTT + 0.5ms processing
  EXPECT_EQ(result.latency, SimTime::micros(2500));
}

TEST_F(AuthServerTest, ChasesCnameInZone) {
  const StubResult result = resolve("alias.example.com");
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.response.answers.size(), 2u);  // CNAME + A
  EXPECT_EQ(result.response.answers[0].type, RecordType::kCname);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.0.1"));
}

TEST_F(AuthServerTest, ChasesMultiHopCname) {
  const StubResult result = resolve("hop1.example.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.response.answers.size(), 3u);  // 2x CNAME + A
}

TEST_F(AuthServerTest, CnameLoopAnswersServfail) {
  const StubResult result = resolve("loop-a.example.com");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.rcode, RCode::kServFail);
}

TEST_F(AuthServerTest, CnameOutOfZoneReturnsPartialChain) {
  const StubResult result = resolve("away.example.com");
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.response.answers.size(), 1u);
  EXPECT_EQ(result.response.answers[0].type, RecordType::kCname);
  EXPECT_FALSE(result.address.has_value());
}

TEST_F(AuthServerTest, NxDomainCarriesSoa) {
  const StubResult result = resolve("missing.example.com");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.rcode, RCode::kNxDomain);
  ASSERT_EQ(result.response.authorities.size(), 1u);
  EXPECT_EQ(result.response.authorities[0].type, RecordType::kSoa);
}

TEST_F(AuthServerTest, NoDataCarriesSoa) {
  const StubResult result = resolve("www.example.com", RecordType::kTxt);
  EXPECT_TRUE(result.rcode == RCode::kNoError);
  EXPECT_TRUE(result.response.answers.empty());
  ASSERT_EQ(result.response.authorities.size(), 1u);
}

TEST_F(AuthServerTest, RefusesOutOfZone) {
  const StubResult result = resolve("www.other.net");
  EXPECT_EQ(result.rcode, RCode::kRefused);
  EXPECT_EQ(server_->stats().refused, 1u);
}

TEST_F(AuthServerTest, DelegationReturnsReferral) {
  Zone* zone = server_->find_zone(DnsName::must_parse("example.com"));
  zone->must_add(make_ns(DnsName::must_parse("child.example.com"),
                         DnsName::must_parse("ns1.child.example.com"), 3600));
  zone->must_add(make_a(DnsName::must_parse("ns1.child.example.com"),
                        Ipv4Address::must_parse("198.18.0.53"), 3600));
  const StubResult result = resolve("www.child.example.com");
  EXPECT_TRUE(result.response.answers.empty());
  EXPECT_FALSE(result.response.header.aa);
  ASSERT_EQ(result.response.authorities.size(), 1u);
  EXPECT_EQ(result.response.authorities[0].type, RecordType::kNs);
  ASSERT_EQ(result.response.additionals.size(), 1u);  // glue
}

TEST_F(AuthServerTest, EcsEchoedWithScopeZero) {
  StubResult out;
  ClientSubnet ecs;
  ecs.address = Ipv4Address::must_parse("203.0.113.0");
  ecs.source_prefix = 24;
  ecs.scope_prefix = 0;
  stub_->resolve_with_ecs(DnsName::must_parse("www.example.com"),
                          RecordType::kA, ecs,
                          [&](const StubResult& result) { out = result; });
  sim_.run();
  EXPECT_TRUE(out.ok);
  ASSERT_TRUE(out.response.edns.has_value());
  ASSERT_TRUE(out.response.edns->client_subnet.has_value());
  EXPECT_EQ(out.response.edns->client_subnet->scope_prefix, 0);
  EXPECT_EQ(out.response.edns->client_subnet->subnet().to_string(),
            "203.0.113.0/24");
}

TEST_F(AuthServerTest, LongestZoneWins) {
  Zone& child = server_->add_zone(DnsName::must_parse("sub.example.com"));
  child.must_add(make_soa(DnsName::must_parse("sub.example.com"),
                          DnsName::must_parse("ns1.sub.example.com"), 1, 60,
                          60));
  child.must_add(make_a(DnsName::must_parse("www.sub.example.com"),
                        Ipv4Address::must_parse("198.18.9.9"), 60));
  const StubResult result = resolve("www.sub.example.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.9.9"));
}

TEST_F(AuthServerTest, MalformedPacketCounted) {
  simnet::UdpSocket* raw = net_.open_socket(client_node_, 0, nullptr);
  raw->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), kDnsPort},
               {0x01, 0x02, 0x03});
  sim_.run();
  EXPECT_EQ(server_->stats().malformed, 1u);
  EXPECT_EQ(server_->stats().queries, 0u);
}

TEST_F(AuthServerTest, ResponsePacketToServerIgnored) {
  // A response (qr=1) arriving at a server must not be processed as a query.
  Message fake = make_query(7, DnsName::must_parse("www.example.com"),
                            RecordType::kA);
  fake.header.qr = true;
  simnet::UdpSocket* raw = net_.open_socket(client_node_, 0, nullptr);
  raw->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), kDnsPort},
               encode(fake));
  sim_.run();
  EXPECT_EQ(server_->stats().queries, 0u);
}

TEST_F(AuthServerTest, RotationCyclesMultiRecordAnswers) {
  Zone* zone = server_->find_zone(DnsName::must_parse("example.com"));
  zone->must_add(make_a(DnsName::must_parse("multi.example.com"),
                        Ipv4Address::must_parse("198.18.0.11"), 60));
  zone->must_add(make_a(DnsName::must_parse("multi.example.com"),
                        Ipv4Address::must_parse("198.18.0.12"), 60));
  zone->must_add(make_a(DnsName::must_parse("multi.example.com"),
                        Ipv4Address::must_parse("198.18.0.13"), 60));

  // Without rotation the first record is stable.
  const auto first = *resolve("multi.example.com").address;
  EXPECT_EQ(*resolve("multi.example.com").address, first);

  server_->set_rotate_answers(true);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 6; ++i) {
    seen.insert(resolve("multi.example.com").address->value());
  }
  EXPECT_EQ(seen.size(), 3u);  // every record led the RRset at least once
}

TEST_F(AuthServerTest, StatsCountResponses) {
  resolve("www.example.com");
  resolve("missing.example.com");
  EXPECT_EQ(server_->stats().queries, 2u);
  EXPECT_EQ(server_->stats().responses, 2u);
  EXPECT_EQ(server_->stats().nxdomain, 1u);
}

}  // namespace
}  // namespace mecdns::dns
