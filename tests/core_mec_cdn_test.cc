// MecCdnSite tests: the paper's assembled system as a reusable component.
#include <gtest/gtest.h>

#include "core/mec_cdn.h"
#include "dns/stub.h"

namespace mecdns::core {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class MecCdnSiteTest : public ::testing::Test {
 protected:
  MecCdnSiteTest() : net_(sim_, util::Rng(17)) {
    MecCdnSite::Config config;
    config.answer_ttl = 0;
    site_ = std::make_unique<MecCdnSite>(net_, config);

    // A "mobile" client one hop outside the cluster gateway.
    client_ = net_.add_node("mobile", Ipv4Address::must_parse("203.0.113.1"));
    net_.add_link(client_, site_->orchestrator().cluster().gateway(),
                  LatencyModel::constant(SimTime::millis(1)));

    cdn::ContentCatalog catalog;
    catalog.add_series(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
                       "seg", 4, 1000);
    site_->add_delivery_service("demo1", catalog);
  }

  dns::StubResult resolve_as(simnet::NodeId node, const std::string& name) {
    dns::StubResolver stub(net_, node, site_->ldns_endpoint(),
                           dns::DnsTransport::Options{SimTime::millis(500),
                                                      0});
    dns::StubResult out;
    stub.resolve(dns::DnsName::must_parse(name), dns::RecordType::kA,
                 [&](const dns::StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  bool is_cache_ip(Ipv4Address addr) const {
    for (std::size_t i = 0; i < site_->site_config().edge_caches; ++i) {
      if (site_->cache_address(i) == addr) return true;
    }
    return false;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  std::unique_ptr<MecCdnSite> site_;
  simnet::NodeId client_;
};

TEST_F(MecCdnSiteTest, MobileClientResolvesCdnDomainAtFirstHop) {
  const auto result = resolve_as(client_, "video.demo1.mycdn.ciab.test");
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(is_cache_ip(*result.address));
  // One hop + in-cluster forward: the whole lookup stays local.
  EXPECT_LT(result.latency, SimTime::millis(15));
}

TEST_F(MecCdnSiteTest, AnswersAreAlwaysClusterIps) {
  // The public-IP-reuse property: every address a mobile client learns is a
  // cluster IP from the service CIDR, never a node/host address.
  const auto& service_cidr =
      site_->orchestrator().cluster().config().service_cidr;
  for (int i = 0; i < 10; ++i) {
    const auto result = resolve_as(
        client_, "obj" + std::to_string(i) + ".demo1.mycdn.ciab.test");
    ASSERT_TRUE(result.ok) << i;
    EXPECT_TRUE(service_cidr.contains(*result.address));
  }
}

TEST_F(MecCdnSiteTest, InternalViewServesServiceDiscovery) {
  // A VNF inside the cluster resolves other services' names.
  const simnet::NodeId vnf = site_->orchestrator().cluster().add_worker("vnf");
  const auto result =
      resolve_as(vnf, "traffic-router.cdn.svc.cluster.local");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(*result.address, site_->cdns_endpoint().addr);
  EXPECT_EQ(site_->ldns().last_view(), "internal");
}

TEST_F(MecCdnSiteTest, InternalNamespaceInvisibleToMobileClients) {
  const auto result =
      resolve_as(client_, "traffic-router.cdn.svc.cluster.local");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(site_->ldns().last_view(), "public");
}

TEST_F(MecCdnSiteTest, NonMecDomainRefusedWithoutProvider) {
  const auto result = resolve_as(client_, "www.google.com");
  EXPECT_EQ(result.rcode, dns::RCode::kRefused);
}

TEST_F(MecCdnSiteTest, PublishedMecAppResolvesPublicly) {
  site_->orchestrator().publish(
      dns::DnsName::must_parse("ar-game.apps.mec.test"),
      Ipv4Address::must_parse("10.96.0.99"));
  const auto result = resolve_as(client_, "ar-game.apps.mec.test");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("10.96.0.99"));
}

TEST_F(MecCdnSiteTest, UnknownDeliveryServiceNxDomainWithoutParent) {
  const auto result = resolve_as(client_, "video.ghost.mycdn.ciab.test");
  EXPECT_EQ(result.rcode, dns::RCode::kNxDomain);
}

TEST_F(MecCdnSiteTest, CachesWarmAfterDeploy) {
  for (auto* cache : site_->caches()) {
    EXPECT_TRUE(cache->cached(
        cdn::Url::must_parse("video.demo1.mycdn.ciab.test/seg0000")));
  }
}

TEST_F(MecCdnSiteTest, RouterKnowsDeliveryService) {
  ASSERT_NE(site_->router(), nullptr);
  EXPECT_TRUE(site_->router()->has_delivery_service("demo1"));
  site_->router()->remove_delivery_service("demo1");
  EXPECT_FALSE(site_->router()->has_delivery_service("demo1"));
}

TEST_F(MecCdnSiteTest, ExternalCdnsConfigSkipsInClusterRouter) {
  MecCdnSite::Config config;
  config.orchestrator.cluster.name = "mec2";
  config.orchestrator.cluster.node_cidr =
      simnet::Cidr::must_parse("10.241.0.0/24");
  config.orchestrator.cluster.service_cidr =
      simnet::Cidr::must_parse("10.97.0.0/16");
  config.external_cdns =
      Endpoint{Ipv4Address::must_parse("198.51.100.53"), dns::kDnsPort};
  MecCdnSite external_site(net_, config);
  EXPECT_EQ(external_site.router(), nullptr);
  EXPECT_EQ(external_site.cdns_endpoint().addr,
            Ipv4Address::must_parse("198.51.100.53"));
}

TEST_F(MecCdnSiteTest, OverloadGuardPresentWhenConfigured) {
  EXPECT_EQ(site_->overload_guard(), nullptr);
  MecCdnSite::Config config;
  config.orchestrator.cluster.name = "mec3";
  config.orchestrator.cluster.node_cidr =
      simnet::Cidr::must_parse("10.242.0.0/24");
  config.orchestrator.cluster.service_cidr =
      simnet::Cidr::must_parse("10.98.0.0/16");
  config.overload_threshold_qps = 10;
  MecCdnSite guarded(net_, config);
  EXPECT_NE(guarded.overload_guard(), nullptr);
}

TEST_F(MecCdnSiteTest, EcsConfigEnablesForwardEcs) {
  EXPECT_FALSE(site_->cdn_forward()->add_ecs());
  MecCdnSite::Config config;
  config.orchestrator.cluster.name = "mec4";
  config.orchestrator.cluster.node_cidr =
      simnet::Cidr::must_parse("10.243.0.0/24");
  config.orchestrator.cluster.service_cidr =
      simnet::Cidr::must_parse("10.99.0.0/16");
  config.enable_ecs = true;
  MecCdnSite ecs_site(net_, config);
  EXPECT_TRUE(ecs_site.cdn_forward()->add_ecs());
}

}  // namespace
}  // namespace mecdns::core
