// Consistent hashing, coverage zones and GeoIP tests — the selection
// machinery behind the C-DNS.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cdn/consistent_hash.h"
#include "cdn/coverage.h"
#include "cdn/geo.h"

namespace mecdns::cdn {
namespace {

TEST(ConsistentHash, PickIsDeterministic) {
  ConsistentHashRing ring;
  ring.add("a");
  ring.add("b");
  ring.add("c");
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(ring.pick(key), ring.pick(key));
  }
}

TEST(ConsistentHash, EmptyRingPicksNothing) {
  ConsistentHashRing ring;
  EXPECT_FALSE(ring.pick("x").has_value());
  EXPECT_TRUE(ring.pick_n("x", 3).empty());
}

TEST(ConsistentHash, BalanceAcrossMembers) {
  // Ring balance improves with virtual-node count; 256 vnodes keeps every
  // member within a factor ~2 of fair share (arc lengths on a hash ring
  // have high variance at low vnode counts — that is expected, not a bug).
  ConsistentHashRing ring(256);
  const int members = 8;
  for (int i = 0; i < members; ++i) ring.add("cache-" + std::to_string(i));
  std::map<std::string, int> counts;
  const int keys = 20000;
  for (int i = 0; i < keys; ++i) {
    ++counts[*ring.pick("object-" + std::to_string(i))];
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(members));
  for (const auto& [member, count] : counts) {
    EXPECT_GT(count, keys / members / 2) << member;
    EXPECT_LT(count, keys / members * 2) << member;
  }
}

TEST(ConsistentHash, MoreVnodesImproveBalance) {
  const auto spread = [](unsigned vnodes) {
    ConsistentHashRing ring(vnodes);
    for (int i = 0; i < 8; ++i) ring.add("cache-" + std::to_string(i));
    std::map<std::string, int> counts;
    for (int i = 0; i < 8000; ++i) {
      ++counts[*ring.pick("object-" + std::to_string(i))];
    }
    int lo = 8000;
    int hi = 0;
    for (const auto& [member, count] : counts) {
      lo = std::min(lo, count);
      hi = std::max(hi, count);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(512), spread(8));
}

TEST(ConsistentHash, MinimalDisruptionOnMemberRemoval) {
  ConsistentHashRing ring(64);
  for (int i = 0; i < 8; ++i) ring.add("cache-" + std::to_string(i));
  std::map<std::string, std::string> before;
  for (int i = 0; i < 5000; ++i) {
    const std::string key = "object-" + std::to_string(i);
    before[key] = *ring.pick(key);
  }
  ring.remove("cache-3");
  int moved = 0;
  for (const auto& [key, owner] : before) {
    if (*ring.pick(key) != owner) ++moved;
  }
  // Only keys owned by the removed member (~1/8) should move; allow slack.
  EXPECT_LT(moved, 5000 / 8 * 2);
  // And keys that were NOT on cache-3 must not move at all.
  for (const auto& [key, owner] : before) {
    if (owner != "cache-3") {
      EXPECT_EQ(*ring.pick(key), owner);
    }
  }
}

TEST(ConsistentHash, AddRemoveContainsSize) {
  ConsistentHashRing ring;
  ring.add("a");
  ring.add("a");  // idempotent
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring.contains("a"));
  ring.remove("a");
  EXPECT_FALSE(ring.contains("a"));
  EXPECT_TRUE(ring.empty());
  ring.remove("a");  // idempotent
  EXPECT_EQ(ring.size(), 0u);
}

TEST(ConsistentHash, PickNReturnsDistinctMembers) {
  ConsistentHashRing ring;
  ring.add("a");
  ring.add("b");
  ring.add("c");
  const auto picks = ring.pick_n("somekey", 3);
  EXPECT_EQ(picks.size(), 3u);
  const std::set<std::string> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 3u);
  // First element of pick_n must equal pick.
  EXPECT_EQ(picks.front(), *ring.pick("somekey"));
  // Asking for more than exist returns all.
  EXPECT_EQ(ring.pick_n("somekey", 10).size(), 3u);
}

// --- coverage zones -------------------------------------------------------------

TEST(Coverage, LongestPrefixWins) {
  CoverageZoneMap map;
  map.add(simnet::Cidr::must_parse("10.0.0.0/8"), "wide");
  map.add(simnet::Cidr::must_parse("10.45.0.0/16"), "narrow");
  EXPECT_EQ(*map.lookup(simnet::Ipv4Address::must_parse("10.45.1.1")),
            "narrow");
  EXPECT_EQ(*map.lookup(simnet::Ipv4Address::must_parse("10.46.1.1")),
            "wide");
  EXPECT_FALSE(
      map.lookup(simnet::Ipv4Address::must_parse("192.168.1.1")).has_value());
}

TEST(Coverage, DefaultGroupFallback) {
  CoverageZoneMap map;
  map.add(simnet::Cidr::must_parse("10.0.0.0/8"), "edge");
  EXPECT_FALSE(
      map.resolve(simnet::Ipv4Address::must_parse("8.8.8.8")).has_value());
  map.set_default_group("cloud");
  EXPECT_EQ(*map.resolve(simnet::Ipv4Address::must_parse("8.8.8.8")),
            "cloud");
  EXPECT_EQ(*map.resolve(simnet::Ipv4Address::must_parse("10.1.1.1")),
            "edge");
}

// --- GeoIP ------------------------------------------------------------------------

TEST(Geo, Distance) {
  EXPECT_DOUBLE_EQ(distance_km({0, 0}, {3, 4}), 5.0);
}

TEST(Geo, ExactLookupLongestPrefix) {
  GeoIpDatabase db;
  db.add(simnet::Cidr::must_parse("203.0.0.0/8"), {100, 100}, "country");
  db.add(simnet::Cidr::must_parse("203.0.113.0/24"), {1, 1}, "city");
  const auto entry =
      db.locate_exact(simnet::Ipv4Address::must_parse("203.0.113.7"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->label, "city");
  EXPECT_FALSE(
      db.locate_exact(simnet::Ipv4Address::must_parse("10.0.0.1")).has_value());
}

TEST(Geo, PerfectAccuracyReturnsTrueLocation) {
  GeoIpDatabase db(GeoAccuracy{0.0, 0.0});
  db.add(simnet::Cidr::must_parse("203.0.113.0/24"), {10, 20}, "site");
  for (int i = 0; i < 50; ++i) {
    const auto point =
        db.locate(simnet::Ipv4Address::must_parse("203.0.113.7"));
    ASSERT_TRUE(point.has_value());
    EXPECT_EQ(*point, (GeoPoint{10, 20}));
  }
}

TEST(Geo, MislocationRateApproximatelyConfigured) {
  GeoIpDatabase db(GeoAccuracy{0.3, 0.0}, /*seed=*/77);
  db.add(simnet::Cidr::must_parse("203.0.113.0/24"), {0, 0}, "here");
  db.add(simnet::Cidr::must_parse("198.51.100.0/24"), {500, 0}, "there");
  int wrong = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto point =
        db.locate(simnet::Ipv4Address::must_parse("203.0.113.7"));
    // A mislocation picks a random entry; half of those land back on the
    // true row, so expect ~15% observable error.
    if (point->x_km != 0.0) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / n, 0.15, 0.04);
}

TEST(Geo, NoiseStaysWithinRadius) {
  GeoIpDatabase db(GeoAccuracy{0.0, 25.0}, 3);
  db.add(simnet::Cidr::must_parse("203.0.113.0/24"), {0, 0}, "here");
  for (int i = 0; i < 200; ++i) {
    const auto point =
        db.locate(simnet::Ipv4Address::must_parse("203.0.113.7"));
    EXPECT_LE(distance_km(*point, {0, 0}), 25.0 + 1e-9);
  }
}

}  // namespace
}  // namespace mecdns::cdn
