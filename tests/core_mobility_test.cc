// Mobility-churn integration: the fragile-vs-robust SLO grading, the
// misconfigured-robust trap, worker-count byte-identity of the bench rows,
// and the bounded-load churn envelope — on a downsized but still
// overloading workload.
#include "core/mobility.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>

#include "core/parallel.h"

namespace mecdns {
namespace {

using core::MobilityKnobs;
using core::MobilityMode;
using core::MobilityRunResult;
using workload::MobilityScenario;

// Downsized to test scale but still past the fragile L-DNS's service
// capacity: the flash crowd concentrates ~0.8 x 150 x 8 Hz ~= 960 qps on
// the target cell, above the 1-worker / 1.1 ms ~= 909 qps ceiling.
MobilityKnobs test_knobs() {
  MobilityKnobs knobs;
  knobs.ues = 150;
  knobs.rate_hz = 8.0;
  knobs.duration = simnet::SimTime::seconds(12);
  knobs.event_start = simnet::SimTime::seconds(3);
  knobs.event_end = simnet::SimTime::seconds(8);
  return knobs;
}

constexpr std::uint64_t kSeed = 42;

// One simulation per (scenario, mode) is ~0.5 s; share runs across tests.
const MobilityRunResult& cached_run(MobilityScenario scenario,
                                    MobilityMode mode) {
  static std::map<std::pair<int, int>, MobilityRunResult> cache;
  const auto key = std::make_pair(static_cast<int>(scenario),
                                  static_cast<int>(mode));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, core::run_mobility_job(scenario, mode, kSeed,
                                                   test_knobs(), false))
             .first;
  }
  return it->second;
}

TEST(MobilityChurnTest, FlashCrowdMeltsFragileButNotRobust) {
  const MobilityRunResult& fragile =
      cached_run(MobilityScenario::kFlashCrowd, MobilityMode::kFragile);
  const MobilityRunResult& robust =
      cached_run(MobilityScenario::kFlashCrowd, MobilityMode::kRobust);

  // Identical seed => identical workload exposure.
  EXPECT_EQ(fragile.issued, robust.issued);
  EXPECT_EQ(fragile.moves, robust.moves);

  // Fragile: silent queue drops become hard 2 s timeouts and the error
  // budget is exhausted.
  EXPECT_FALSE(fragile.slo.ok);
  EXPECT_GT(fragile.ue_timeouts, 0u);
  EXPECT_LT(fragile.success_rate, 0.99);
  EXPECT_EQ(fragile.shed, 0u);  // nothing shed — the drops are silent

  // Robust: the guard sheds with SERVFAIL, clients fail over to the
  // provider, and every window stays inside the SLO.
  EXPECT_TRUE(robust.slo.ok);
  EXPECT_GE(robust.success_rate, 0.99);
  EXPECT_GT(robust.shed, 0u);
  EXPECT_GT(robust.ue_failovers, 0u);
  EXPECT_GT(robust.scale_ups, 0u);
  EXPECT_GT(robust.max_site_replicas,
            static_cast<std::size_t>(1));  // elasticity actually engaged
}

TEST(MobilityChurnTest, MisconfiguredRobustFailsTheSloUnderItsOwnLabel) {
  const MobilityRunResult& broken =
      cached_run(MobilityScenario::kFlashCrowd, MobilityMode::kMisconfigured);
  // The site machinery sheds, but the forgotten client fallback turns
  // every shed into a hard SERVFAIL failure: the run *claims* robust and
  // must still flunk the SLO — this is what the CI gate exists to catch.
  EXPECT_EQ(broken.mode, "robust");
  EXPECT_GT(broken.shed, 0u);
  EXPECT_EQ(broken.ue_failovers, 0u);
  EXPECT_FALSE(broken.slo.ok);
  EXPECT_LT(broken.success_rate, 0.99);
}

TEST(MobilityChurnTest, HandoffStormRetargetsInFlightTransactions) {
  const MobilityRunResult& robust =
      cached_run(MobilityScenario::kHandoffStorm, MobilityMode::kRobust);
  // Continuous churn: the cohort's HandoffManagers execute real bulk
  // re-targets and some queries are caught mid-flight and follow them.
  EXPECT_GT(robust.cohort_handoffs, 0u);
  EXPECT_GT(robust.in_flight_retargets, 0u);
  EXPECT_TRUE(robust.slo.ok);
}

TEST(MobilityChurnTest, AllocationChurnStaysInsideBoundedLoadEnvelope) {
  const MobilityRunResult& robust =
      cached_run(MobilityScenario::kFlashCrowd, MobilityMode::kRobust);
  // Replica topology changed (bootstrap + auto-scaling), so churn was
  // measured...
  EXPECT_GT(robust.topology_changes, 0u);
  EXPECT_GT(robust.max_remap_fraction, 0.0);
  // ...and the worst observed remap stays at the bounded-load O(K/n)
  // level: the 1->2 bootstrap transition (~1/2 the keyspace). A naive
  // mod-N placement would remap ~everything on every change.
  EXPECT_LE(robust.max_remap_fraction, 0.6);
}

TEST(MobilityChurnTest, RowsAreByteIdenticalAcrossWorkerCounts) {
  const MobilityKnobs knobs = test_knobs();
  const auto run_rows = [&](std::size_t workers) {
    const core::ParallelCampaign campaign(workers);
    const auto outcomes = campaign.run<std::string>(2, [&](std::size_t i) {
      return core::mobility_row_json(core::run_mobility_job(
          MobilityScenario::kFlashCrowd,
          i == 0 ? MobilityMode::kFragile : MobilityMode::kRobust, kSeed,
          knobs, false));
    });
    std::string rows;
    for (const auto& outcome : outcomes) {
      EXPECT_TRUE(outcome.ok) << outcome.error;
      rows += outcome.value + "\n";
    }
    return rows;
  };
  const std::string serial = run_rows(1);
  const std::string parallel = run_rows(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"mode\": \"fragile\""), std::string::npos);
  EXPECT_NE(serial.find("\"mode\": \"robust\""), std::string::npos);
}

}  // namespace
}  // namespace mecdns
