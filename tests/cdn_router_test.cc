// Traffic Router (C-DNS) and opaque commercial-router tests.
#include <gtest/gtest.h>

#include "cdn/opaque_router.h"
#include "cdn/traffic_router.h"
#include "dns/stub.h"

namespace mecdns::cdn {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : net_(sim_, util::Rng(41)) {
    edge_client_ =
        net_.add_node("edge-resolver", Ipv4Address::must_parse("10.240.0.2"));
    far_client_ =
        net_.add_node("far-resolver", Ipv4Address::must_parse("8.8.8.8"));
    router_node_ =
        net_.add_node("router", Ipv4Address::must_parse("198.51.100.53"));
    net_.add_link(edge_client_, router_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    net_.add_link(far_client_, router_node_,
                  LatencyModel::constant(SimTime::millis(1)));

    TrafficRouter::Config config;
    config.cdn_domain = dns::DnsName::must_parse("mycdn.test");
    config.answer_ttl = 30;
    config.parent_domain = dns::DnsName::must_parse("mid.cdn.example");
    router_ = std::make_unique<TrafficRouter>(
        net_, router_node_, "router",
        LatencyModel::constant(SimTime::micros(500)), config);

    router_->add_cache("mec-edge",
                       CacheInfo{"edge-0", Ipv4Address::must_parse("10.96.1.1"),
                                 true});
    router_->add_cache("mec-edge",
                       CacheInfo{"edge-1", Ipv4Address::must_parse("10.96.1.2"),
                                 true});
    router_->add_cache("cloud",
                       CacheInfo{"cloud-0",
                                 Ipv4Address::must_parse("198.18.2.1"), true});
    router_->add_delivery_service(DeliveryService{
        "demo1", dns::DnsName::must_parse("demo1.mycdn.test"),
        {"mec-edge", "cloud"}});
    router_->coverage().add(simnet::Cidr::must_parse("10.240.0.0/24"),
                            "mec-edge");
    router_->coverage().set_default_group("cloud");
  }

  dns::StubResult resolve_from(simnet::NodeId node, const std::string& name,
                               dns::RecordType type = dns::RecordType::kA) {
    dns::StubResolver stub(
        net_, node,
        Endpoint{Ipv4Address::must_parse("198.51.100.53"), dns::kDnsPort});
    dns::StubResult out;
    stub.resolve(dns::DnsName::must_parse(name), type,
                 [&](const dns::StubResult& result) { out = result; });
    sim_.run();
    return out;
  }

  bool is_edge(Ipv4Address addr) const {
    return simnet::Cidr::must_parse("10.96.0.0/16").contains(addr);
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId edge_client_;
  simnet::NodeId far_client_;
  simnet::NodeId router_node_;
  std::unique_ptr<TrafficRouter> router_;
};

TEST_F(RouterTest, RoutesEdgeResolverToEdgeCache) {
  const auto result = resolve_from(edge_client_, "video.demo1.mycdn.test");
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(is_edge(*result.address));
  EXPECT_EQ(result.response.answers[0].ttl, 30u);
  EXPECT_EQ(router_->router_stats().coverage_hits, 1u);
}

TEST_F(RouterTest, RoutesUnknownResolverToDefaultGroup) {
  const auto result = resolve_from(far_client_, "video.demo1.mycdn.test");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.2.1"));
}

TEST_F(RouterTest, ConsistentHashPinsNameToCache) {
  const auto first = resolve_from(edge_client_, "video.demo1.mycdn.test");
  for (int i = 0; i < 5; ++i) {
    const auto again = resolve_from(edge_client_, "video.demo1.mycdn.test");
    EXPECT_EQ(*again.address, *first.address);
  }
  // Different names may land on different caches; across many names both
  // edge caches should be used.
  std::set<std::uint32_t> used;
  for (int i = 0; i < 20; ++i) {
    const auto result = resolve_from(
        edge_client_, "obj" + std::to_string(i) + ".demo1.mycdn.test");
    used.insert(result.address->value());
  }
  EXPECT_EQ(used.size(), 2u);
}

TEST_F(RouterTest, UnhealthyCacheAvoided) {
  const auto before = resolve_from(edge_client_, "video.demo1.mycdn.test");
  const std::string failing =
      *before.address == Ipv4Address::must_parse("10.96.1.1") ? "edge-0"
                                                              : "edge-1";
  router_->set_cache_healthy("mec-edge", failing, false);
  const auto after = resolve_from(edge_client_, "video.demo1.mycdn.test");
  ASSERT_TRUE(after.ok);
  EXPECT_NE(*after.address, *before.address);
  EXPECT_TRUE(is_edge(*after.address));

  // Recovery restores the original consistent-hash assignment.
  router_->set_cache_healthy("mec-edge", failing, true);
  const auto recovered = resolve_from(edge_client_, "video.demo1.mycdn.test");
  EXPECT_EQ(*recovered.address, *before.address);
}

TEST_F(RouterTest, UnknownServiceGetsCascadingCname) {
  const auto result = resolve_from(edge_client_, "video.other.mycdn.test");
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.response.answers.size(), 1u);
  const auto* cname =
      std::get_if<dns::CnameRecord>(&result.response.answers[0].rdata);
  ASSERT_NE(cname, nullptr);
  // The relative labels are re-rooted under the parent tier's domain.
  EXPECT_EQ(cname->target,
            dns::DnsName::must_parse("video.other.mid.cdn.example"));
  EXPECT_EQ(router_->router_stats().referred_to_parent, 1u);
}

TEST_F(RouterTest, NoParentMeansNxDomainForUnknownService) {
  TrafficRouter::Config config;
  config.cdn_domain = dns::DnsName::must_parse("mycdn.test");
  const simnet::NodeId node =
      net_.add_node("router2", Ipv4Address::must_parse("198.51.100.54"));
  net_.add_link(edge_client_, node,
                LatencyModel::constant(SimTime::millis(1)));
  TrafficRouter bare(net_, node, "router2",
                     LatencyModel::constant(SimTime::micros(500)), config);
  dns::StubResolver stub(
      net_, edge_client_,
      Endpoint{Ipv4Address::must_parse("198.51.100.54"), dns::kDnsPort});
  dns::StubResult out;
  stub.resolve(dns::DnsName::must_parse("x.mycdn.test"), dns::RecordType::kA,
               [&](const dns::StubResult& result) { out = result; });
  sim_.run();
  EXPECT_EQ(out.rcode, dns::RCode::kNxDomain);
}

TEST_F(RouterTest, OutOfDomainRefused) {
  const auto result = resolve_from(edge_client_, "www.elsewhere.org");
  EXPECT_EQ(result.rcode, dns::RCode::kRefused);
}

TEST_F(RouterTest, NonAQueryGetsNoData) {
  const auto result =
      resolve_from(edge_client_, "video.demo1.mycdn.test",
                   dns::RecordType::kTxt);
  EXPECT_EQ(result.rcode, dns::RCode::kNoError);
  EXPECT_TRUE(result.response.answers.empty());
}

TEST_F(RouterTest, EcsOverridesResolverLocalization) {
  router_->set_use_ecs(true);
  // Far resolver forwards an edge client's subnet: answer must be edge.
  dns::StubResolver stub(
      net_, far_client_,
      Endpoint{Ipv4Address::must_parse("198.51.100.53"), dns::kDnsPort});
  dns::ClientSubnet ecs;
  ecs.address = Ipv4Address::must_parse("10.240.0.0");
  ecs.source_prefix = 24;
  dns::StubResult out;
  stub.resolve_with_ecs(dns::DnsName::must_parse("video.demo1.mycdn.test"),
                        dns::RecordType::kA, ecs,
                        [&](const dns::StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(is_edge(*out.address));
  // Scope reflects the localization (RFC 7871).
  ASSERT_TRUE(out.response.edns.has_value());
  EXPECT_EQ(out.response.edns->client_subnet->scope_prefix, 24);
  EXPECT_EQ(router_->router_stats().ecs_localized, 1u);
}

TEST_F(RouterTest, EcsIgnoredWhenDisabled) {
  router_->set_use_ecs(false);
  dns::StubResolver stub(
      net_, far_client_,
      Endpoint{Ipv4Address::must_parse("198.51.100.53"), dns::kDnsPort});
  dns::ClientSubnet ecs;
  ecs.address = Ipv4Address::must_parse("10.240.0.0");
  ecs.source_prefix = 24;
  dns::StubResult out;
  stub.resolve_with_ecs(dns::DnsName::must_parse("video.demo1.mycdn.test"),
                        dns::RecordType::kA, ecs,
                        [&](const dns::StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);
  // Resolver-based localization: far resolver -> cloud.
  EXPECT_EQ(*out.address, Ipv4Address::must_parse("198.18.2.1"));
  EXPECT_EQ(out.response.edns->client_subnet->scope_prefix, 0);
}

TEST_F(RouterTest, SelectionsAreCounted) {
  for (int i = 0; i < 10; ++i) {
    resolve_from(edge_client_, "obj" + std::to_string(i) + ".demo1.mycdn.test");
  }
  std::uint64_t total = 0;
  for (const auto& [cache, count] : router_->selections()) total += count;
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(router_->router_stats().routed, 10u);
}

TEST_F(RouterTest, GeoFallbackPicksNearestGroup) {
  // A resolver covered by neither coverage zone nor default: use geo.
  TrafficRouter::Config config;
  config.cdn_domain = dns::DnsName::must_parse("geo.test");
  const simnet::NodeId node =
      net_.add_node("router3", Ipv4Address::must_parse("198.51.100.55"));
  net_.add_link(far_client_, node, LatencyModel::constant(SimTime::millis(1)));
  TrafficRouter geo_router(net_, node, "router3",
                           LatencyModel::constant(SimTime::micros(500)),
                           config);
  geo_router.add_cache("near", CacheInfo{"n0",
                                         Ipv4Address::must_parse("10.10.0.1"),
                                         true});
  geo_router.add_cache("far", CacheInfo{"f0",
                                        Ipv4Address::must_parse("10.20.0.1"),
                                        true});
  geo_router.set_group_location("near", GeoPoint{10, 0});
  geo_router.set_group_location("far", GeoPoint{900, 0});
  geo_router.geo().add(simnet::Cidr::must_parse("8.8.8.0/24"), GeoPoint{0, 0},
                       "resolver-site");
  geo_router.add_delivery_service(DeliveryService{
      "vid", dns::DnsName::must_parse("vid.geo.test"), {"near", "far"}});

  dns::StubResolver stub(
      net_, far_client_,
      Endpoint{Ipv4Address::must_parse("198.51.100.55"), dns::kDnsPort});
  dns::StubResult out;
  stub.resolve(dns::DnsName::must_parse("x.vid.geo.test"), dns::RecordType::kA,
               [&](const dns::StubResult& result) { out = result; });
  sim_.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(*out.address, Ipv4Address::must_parse("10.10.0.1"));
  EXPECT_EQ(geo_router.router_stats().geo_fallbacks, 1u);
}

// --- OpaqueCdnRouter ---------------------------------------------------------

class OpaqueTest : public ::testing::Test {
 protected:
  OpaqueTest() : net_(sim_, util::Rng(43)) {
    campus_ = net_.add_node("campus", Ipv4Address::must_parse("172.16.0.53"));
    carrier_ = net_.add_node("carrier", Ipv4Address::must_parse("10.202.0.53"));
    router_node_ =
        net_.add_node("cdns", Ipv4Address::must_parse("198.51.100.60"));
    net_.add_link(campus_, router_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    net_.add_link(carrier_, router_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    router_ = std::make_unique<OpaqueCdnRouter>(
        net_, router_node_, "cdns",
        LatencyModel::constant(SimTime::micros(500)),
        dns::DnsName::must_parse("a0.muscache.com"), 5);
    router_->add_pool("Akamai", simnet::Cidr::must_parse("23.55.124.0/24"));
    router_->add_pool("Fastly", simnet::Cidr::must_parse("151.101.0.0/16"));
    router_->add_resolver_class(
        simnet::Cidr::must_parse("172.16.0.53/32"), "campus");
    router_->add_resolver_class(
        simnet::Cidr::must_parse("10.202.0.53/32"), "carrier");
    router_->set_weights("campus", {0.9, 0.1});
    router_->set_weights("carrier", {0.1, 0.9});
  }

  double share_akamai(simnet::NodeId from, int queries) {
    dns::StubResolver stub(
        net_, from,
        Endpoint{Ipv4Address::must_parse("198.51.100.60"), dns::kDnsPort});
    int akamai = 0;
    int total = 0;
    for (int i = 0; i < queries; ++i) {
      stub.resolve(dns::DnsName::must_parse("a0.muscache.com"),
                   dns::RecordType::kA, [&](const dns::StubResult& result) {
                     if (!result.ok) return;
                     ++total;
                     if (simnet::Cidr::must_parse("23.55.124.0/24")
                             .contains(*result.address)) {
                       ++akamai;
                     }
                   });
      sim_.run();
    }
    return total == 0 ? 0.0 : static_cast<double>(akamai) / total;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId campus_;
  simnet::NodeId carrier_;
  simnet::NodeId router_node_;
  std::unique_ptr<OpaqueCdnRouter> router_;
};

TEST_F(OpaqueTest, PerResolverClassWeightsApplied) {
  const double campus_share = share_akamai(campus_, 300);
  const double carrier_share = share_akamai(carrier_, 300);
  EXPECT_NEAR(campus_share, 0.9, 0.06);
  EXPECT_NEAR(carrier_share, 0.1, 0.06);
  // Router-side distribution bookkeeping agrees.
  EXPECT_NEAR(router_->distribution("campus").share(
                  "Akamai (23.55.124.0/24)"),
              0.9, 0.06);
}

TEST_F(OpaqueTest, AnswersAreInsidePoolCidrs) {
  dns::StubResolver stub(
      net_, campus_,
      Endpoint{Ipv4Address::must_parse("198.51.100.60"), dns::kDnsPort});
  for (int i = 0; i < 50; ++i) {
    stub.resolve(dns::DnsName::must_parse("a0.muscache.com"),
                 dns::RecordType::kA, [&](const dns::StubResult& result) {
                   ASSERT_TRUE(result.ok);
                   const bool in_pool =
                       simnet::Cidr::must_parse("23.55.124.0/24")
                           .contains(*result.address) ||
                       simnet::Cidr::must_parse("151.101.0.0/16")
                           .contains(*result.address);
                   EXPECT_TRUE(in_pool);
                 });
    sim_.run();
  }
}

TEST_F(OpaqueTest, OutOfDomainRefused) {
  dns::StubResolver stub(
      net_, campus_,
      Endpoint{Ipv4Address::must_parse("198.51.100.60"), dns::kDnsPort});
  dns::StubResult out;
  stub.resolve(dns::DnsName::must_parse("other.example.com"),
               dns::RecordType::kA,
               [&](const dns::StubResult& result) { out = result; });
  sim_.run();
  EXPECT_EQ(out.rcode, dns::RCode::kRefused);
}

TEST_F(OpaqueTest, WeightCountMustMatchPools) {
  EXPECT_THROW(router_->set_weights("x", {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace mecdns::cdn
