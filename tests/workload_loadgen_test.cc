// LoadGenerator: arrival-rate properties, closed-loop behaviour, the
// O(in-flight) scheduling discipline, and determinism (the generator is
// part of the byte-identical-across-workers contract of bench_throughput).
#include "workload/loadgen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "simnet/simulator.h"
#include "simnet/time.h"

namespace mecdns {
namespace {

using workload::LoadGenerator;

std::vector<std::pair<std::int64_t, std::uint32_t>> record_arrivals(
    simnet::Simulator& sim, LoadGenerator::Options options) {
  std::vector<std::pair<std::int64_t, std::uint32_t>> arrivals;
  LoadGenerator gen(sim, options, [&](std::uint32_t ue) {
    arrivals.emplace_back(sim.now().count_nanos(), ue);
  });
  gen.start();
  sim.run();
  return arrivals;
}

TEST(LoadGeneratorTest, OpenLoopRateMatchesConfiguredRate) {
  simnet::Simulator sim;
  LoadGenerator::Options options;
  options.ues = 500;
  options.rate_hz = 2.0;
  options.duration = simnet::SimTime::seconds(10);
  options.seed = 11;
  const auto arrivals = record_arrivals(sim, options);

  // 500 UEs x 2 Hz x 10 s = 10000 expected arrivals; Poisson stddev is
  // sqrt(10000) = 100, so +-5% is a > 5-sigma band — a property, not a
  // golden value.
  const double expected = 500 * 2.0 * 10.0;
  EXPECT_GT(static_cast<double>(arrivals.size()), expected * 0.95);
  EXPECT_LT(static_cast<double>(arrivals.size()), expected * 1.05);
}

TEST(LoadGeneratorTest, ArrivalsStayInsideWindowAndAreTimeOrdered) {
  simnet::Simulator sim;
  LoadGenerator::Options options;
  options.ues = 200;
  options.rate_hz = 1.0;
  options.duration = simnet::SimTime::seconds(5);
  options.seed = 3;
  const auto arrivals = record_arrivals(sim, options);
  ASSERT_FALSE(arrivals.empty());
  std::int64_t prev = -1;
  for (const auto& [at, ue] : arrivals) {
    EXPECT_GE(at, 0);
    EXPECT_LT(at, simnet::SimTime::seconds(5).count_nanos());
    EXPECT_GE(at, prev);  // issued in nondecreasing time order
    prev = at;
  }
}

TEST(LoadGeneratorTest, DeterministicAcrossRunsAndSeedSensitive) {
  LoadGenerator::Options options;
  options.ues = 300;
  options.rate_hz = 0.5;
  options.duration = simnet::SimTime::seconds(8);
  options.seed = 42;

  simnet::Simulator sim_a;
  simnet::Simulator sim_b;
  const auto a = record_arrivals(sim_a, options);
  const auto b = record_arrivals(sim_b, options);
  EXPECT_EQ(a, b);

  options.seed = 43;
  simnet::Simulator sim_c;
  const auto c = record_arrivals(sim_c, options);
  EXPECT_NE(a, c);
}

TEST(LoadGeneratorTest, EventQueueStaysTinyRegardlessOfPopulation) {
  // The generator's whole point: 50k UEs' pending arrivals live in its own
  // heap, not the simulator queue — one armed pump event at a time.
  simnet::Simulator sim;
  LoadGenerator::Options options;
  options.ues = 50000;
  options.rate_hz = 0.1;
  options.duration = simnet::SimTime::seconds(2);
  options.seed = 5;
  std::uint64_t issued = 0;
  LoadGenerator gen(sim, options, [&](std::uint32_t) { ++issued; });
  gen.start();
  sim.run();
  EXPECT_GT(issued, 5000u);
  EXPECT_LE(sim.max_queue_depth(), 3u);
}

TEST(LoadGeneratorTest, ClosedLoopWaitsForCompletions) {
  simnet::Simulator sim;
  LoadGenerator::Options options;
  options.ues = 50;
  options.rate_hz = 1.0;
  options.closed_loop = true;
  options.mean_think = simnet::SimTime::millis(100);
  options.duration = simnet::SimTime::seconds(10);
  options.seed = 9;

  // Nobody calls complete(): each UE issues at most its first arrival.
  std::uint64_t issued = 0;
  LoadGenerator gen(sim, options, [&](std::uint32_t) { ++issued; });
  gen.start();
  sim.run();
  EXPECT_LE(issued, 50u);
  EXPECT_GT(issued, 0u);
}

TEST(LoadGeneratorTest, ClosedLoopCompletionsDriveFurtherArrivals) {
  simnet::Simulator sim;
  LoadGenerator::Options options;
  options.ues = 50;
  options.rate_hz = 1.0;
  options.closed_loop = true;
  options.mean_think = simnet::SimTime::millis(100);
  options.duration = simnet::SimTime::seconds(10);
  options.seed = 9;

  // Complete immediately: each UE cycles think -> issue -> think...
  LoadGenerator* gen_ptr = nullptr;
  LoadGenerator gen(sim, options,
                    [&](std::uint32_t ue) { gen_ptr->complete(ue); });
  gen_ptr = &gen;
  gen.start();
  sim.run();
  // ~50 UEs x (10 s / 0.1 s think) = ~5000; demand well above one round.
  EXPECT_GT(gen.issued(), 1000u);
  EXPECT_EQ(gen.issued(), gen.completed());
  EXPECT_TRUE(gen.drained());
}

TEST(LoadGeneratorTest, ZeroRateOrZeroUesIssuesNothing) {
  {
    simnet::Simulator sim;
    LoadGenerator::Options options;
    options.ues = 0;
    const auto arrivals = record_arrivals(sim, options);
    EXPECT_TRUE(arrivals.empty());
  }
  {
    simnet::Simulator sim;
    LoadGenerator::Options options;
    options.ues = 100;
    options.rate_hz = 0.0;
    const auto arrivals = record_arrivals(sim, options);
    EXPECT_TRUE(arrivals.empty());
  }
}

}  // namespace
}  // namespace mecdns
