// Multi-tier referral: content not deployed at the MEC resolves through a
// cascading CNAME into the parent CDN tier (§3 P2: "C-DNS simply returns
// the address of another C-DNS running at a different CDN tier").
#include <gtest/gtest.h>

#include "core/fig5.h"

namespace mecdns::core {
namespace {

class TierReferralTest : public ::testing::Test {
 protected:
  TierReferralTest() {
    Fig5Testbed::Config config;
    config.deployment = Fig5Deployment::kMecLdnsMecCdns;
    config.provider_fallback = true;
    testbed_ = std::make_unique<Fig5Testbed>(config);
    testbed_->ue().resolver().set_chase_cnames(true);
  }

  dns::StubResult resolve(const dns::DnsName& name) {
    dns::StubResult out;
    testbed_->ue().resolver().resolve(
        name, dns::RecordType::kA,
        [&](const dns::StubResult& result) { out = result; });
    testbed_->network().simulator().run();
    return out;
  }

  std::unique_ptr<Fig5Testbed> testbed_;
};

TEST_F(TierReferralTest, EdgeContentStillResolvesLocally) {
  const auto result = resolve(testbed_->content_name());
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(testbed_->is_mec_cache(*result.address));
}

TEST_F(TierReferralTest, MissingServiceCascadesToParentTier) {
  const auto result = resolve(testbed_->tier2_name());
  ASSERT_TRUE(result.ok) << result.error;
  // The answer is the cloud cache registered at the mid tier.
  EXPECT_TRUE(testbed_->is_cloud_cache(*result.address));
  EXPECT_FALSE(testbed_->is_mec_cache(*result.address));
}

TEST_F(TierReferralTest, ReferralCostsMoreThanEdgeResolution) {
  // Warm the delegation caches first.
  resolve(testbed_->tier2_name());
  const auto edge = resolve(testbed_->content_name());
  const auto referred = resolve(testbed_->tier2_name());
  ASSERT_TRUE(edge.ok);
  ASSERT_TRUE(referred.ok);
  // Two resolution legs (edge CNAME + provider recursion to the mid tier)
  // instead of one: clearly slower.
  EXPECT_GT(referred.latency.to_millis(), edge.latency.to_millis() + 30.0);
}

TEST_F(TierReferralTest, ReferredContentIsFetchable) {
  bool done = false;
  cdn::Url url;
  url.host = testbed_->tier2_name();
  url.path = "/segment0000";
  // The UE's built-in fetch path uses its resolver (now chasing CNAMEs).
  testbed_->ue().resolve_and_fetch(
      url, [&](const ran::UserEquipment::FetchOutcome& outcome) {
        done = true;
        ASSERT_TRUE(outcome.ok) << outcome.error;
        EXPECT_TRUE(testbed_->is_cloud_cache(outcome.server));
        EXPECT_TRUE(outcome.response.served_from_cache);
      });
  testbed_->network().simulator().run();
  EXPECT_TRUE(done);
}

TEST_F(TierReferralTest, WithoutChasingClientSeesOnlyTheCname) {
  testbed_->ue().resolver().set_chase_cnames(false);
  const auto result = resolve(testbed_->tier2_name());
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.address.has_value());
  ASSERT_FALSE(result.response.answers.empty());
  EXPECT_EQ(result.response.answers.front().type, dns::RecordType::kCname);
}

TEST_F(TierReferralTest, ChaseDepthIsBounded) {
  testbed_->ue().resolver().set_chase_cnames(true, /*max_hops=*/0);
  const auto result = resolve(testbed_->tier2_name());
  // Zero hops allowed: behaves like no chasing.
  EXPECT_FALSE(result.address.has_value());
}

}  // namespace
}  // namespace mecdns::core
