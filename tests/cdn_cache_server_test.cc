#include <gtest/gtest.h>

#include "cdn/cache_server.h"

namespace mecdns::cdn {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class CacheServerTest : public ::testing::Test {
 protected:
  CacheServerTest() : net_(sim_, util::Rng(31)) {
    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    cache_node_ = net_.add_node("edge", Ipv4Address::must_parse("10.0.0.2"));
    origin_node_ = net_.add_node("origin", Ipv4Address::must_parse("10.0.0.3"));
    net_.add_link(client_node_, cache_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    net_.add_link(cache_node_, origin_node_,
                  LatencyModel::constant(SimTime::millis(20)));

    ContentCatalog catalog;
    catalog.add_series(dns::DnsName::must_parse("v.test"), "seg", 16, 1000);
    origin_ = std::make_unique<OriginServer>(
        net_, origin_node_, "origin", catalog,
        LatencyModel::constant(SimTime::millis(2)));

    CacheServer::Config config;
    config.capacity_bytes = 4096;  // 4 objects of 1000B fit
    config.parent = Endpoint{Ipv4Address::must_parse("10.0.0.3"),
                             kContentPort};
    config.service_time = LatencyModel::constant(SimTime::micros(200));
    cache_ = std::make_unique<CacheServer>(net_, cache_node_, "edge", config);
    client_ = std::make_unique<ContentClient>(net_, client_node_);
  }

  ContentResponse get(const std::string& url, SimTime* latency = nullptr) {
    ContentResponse out;
    client_->get(Endpoint{Ipv4Address::must_parse("10.0.0.2"), kContentPort},
                 Url::must_parse(url),
                 [&](util::Result<ContentResponse> response, SimTime rtt) {
                   if (response.ok()) out = response.value();
                   if (latency != nullptr) *latency = rtt;
                 });
    sim_.run();
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId client_node_;
  simnet::NodeId cache_node_;
  simnet::NodeId origin_node_;
  std::unique_ptr<OriginServer> origin_;
  std::unique_ptr<CacheServer> cache_;
  std::unique_ptr<ContentClient> client_;
};

TEST_F(CacheServerTest, MissFetchesFromParentThenHits) {
  SimTime miss_latency;
  const ContentResponse miss = get("v.test/seg0000", &miss_latency);
  EXPECT_EQ(miss.status, 200);
  EXPECT_FALSE(miss.served_from_cache);
  EXPECT_EQ(cache_->stats().misses, 1u);
  EXPECT_EQ(cache_->stats().parent_fetches, 1u);
  EXPECT_EQ(origin_->requests(), 1u);

  SimTime hit_latency;
  const ContentResponse hit = get("v.test/seg0000", &hit_latency);
  EXPECT_EQ(hit.status, 200);
  EXPECT_TRUE(hit.served_from_cache);
  EXPECT_EQ(origin_->requests(), 1u);  // no second fetch
  // Hit avoids the 40ms origin round trip.
  EXPECT_LT(hit_latency + SimTime::millis(35), miss_latency);
}

TEST_F(CacheServerTest, WarmedContentHitsImmediately) {
  cache_->warm(ContentObject{Url::must_parse("v.test/seg0005"), 1000});
  const ContentResponse hit = get("v.test/seg0005");
  EXPECT_TRUE(hit.served_from_cache);
  EXPECT_EQ(origin_->requests(), 0u);
}

TEST_F(CacheServerTest, UnknownContentIs404) {
  const ContentResponse missing = get("v.test/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(cache_->stats().not_found, 1u);
}

TEST_F(CacheServerTest, NoParentMeans404OnMiss) {
  cache_->set_parent(std::nullopt);
  const ContentResponse response = get("v.test/seg0000");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(origin_->requests(), 0u);
}

TEST_F(CacheServerTest, LruEvictionKeepsCapacity) {
  for (int i = 0; i < 8; ++i) {
    char url[32];
    std::snprintf(url, sizeof(url), "v.test/seg%04d", i);
    get(url);
  }
  EXPECT_LE(cache_->used_bytes(), 4096u);
  EXPECT_GT(cache_->stats().evictions, 0u);
  // Oldest object evicted, newest kept.
  EXPECT_FALSE(cache_->cached(Url::must_parse("v.test/seg0000")));
  EXPECT_TRUE(cache_->cached(Url::must_parse("v.test/seg0007")));
}

TEST_F(CacheServerTest, LruTouchOnHitProtectsHotObject) {
  get("v.test/seg0000");
  get("v.test/seg0001");
  get("v.test/seg0002");
  get("v.test/seg0003");          // cache now full
  get("v.test/seg0000");          // touch the oldest -> most recent
  get("v.test/seg0004");          // evicts seg0001, not seg0000
  EXPECT_TRUE(cache_->cached(Url::must_parse("v.test/seg0000")));
  EXPECT_FALSE(cache_->cached(Url::must_parse("v.test/seg0001")));
}

TEST_F(CacheServerTest, OversizedObjectNotCached) {
  cache_->warm(ContentObject{Url::must_parse("v.test/huge"), 10000});
  EXPECT_FALSE(cache_->cached(Url::must_parse("v.test/huge")));
  EXPECT_EQ(cache_->used_bytes(), 0u);
}

TEST_F(CacheServerTest, ParentTimeoutAnswers404) {
  net_.set_node_up(origin_node_, false);
  CacheServer::Config config;
  config.parent = Endpoint{Ipv4Address::must_parse("10.0.0.3"), kContentPort};
  config.parent_timeout = SimTime::millis(100);
  // Rebuild the cache server with the short timeout on a fresh node.
  const simnet::NodeId node2 =
      net_.add_node("edge2", Ipv4Address::must_parse("10.0.0.4"));
  net_.add_link(client_node_, node2,
                LatencyModel::constant(SimTime::millis(1)));
  net_.add_link(node2, origin_node_,
                LatencyModel::constant(SimTime::millis(5)));
  CacheServer isolated(net_, node2, "edge2", config);

  ContentResponse out;
  client_->get(Endpoint{Ipv4Address::must_parse("10.0.0.4"), kContentPort},
               Url::must_parse("v.test/seg0000"),
               [&](util::Result<ContentResponse> response, SimTime) {
                 if (response.ok()) out = response.value();
               });
  sim_.run();
  EXPECT_EQ(out.status, 404);
  EXPECT_EQ(isolated.stats().parent_failures, 1u);
}

TEST_F(CacheServerTest, ClientTimeoutWhenServerUnreachable) {
  net_.set_node_up(cache_node_, false);
  bool failed = false;
  client_->get(Endpoint{Ipv4Address::must_parse("10.0.0.2"), kContentPort},
               Url::must_parse("v.test/seg0000"),
               [&](util::Result<ContentResponse> response, SimTime) {
                 failed = !response.ok();
               },
               SimTime::millis(200));
  sim_.run();
  EXPECT_TRUE(failed);
}

TEST_F(CacheServerTest, BytesServedAccounted) {
  get("v.test/seg0000");
  get("v.test/seg0000");
  EXPECT_EQ(cache_->stats().bytes_served, 2000u);
  EXPECT_DOUBLE_EQ(cache_->stats().hit_rate(), 0.5);
}

}  // namespace
}  // namespace mecdns::cdn
