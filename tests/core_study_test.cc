// Measurement-study (Figures 2 and 3) tests.
#include <gtest/gtest.h>

#include "core/study.h"

namespace mecdns::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  StudyTest() {
    MeasurementStudy::Config config;
    config.queries_per_cell = 25;
    study_ = std::make_unique<MeasurementStudy>(config);
  }

  std::unique_ptr<MeasurementStudy> study_;
};

TEST_F(StudyTest, AllCellsResolveWithoutFailures) {
  for (std::size_t site = 0; site < workload::figure3_profiles().size();
       ++site) {
    for (const auto& network_class : workload::network_classes()) {
      const auto cell = study_->run_cell(site, network_class);
      EXPECT_EQ(cell.failures, 0u) << cell.website << "/" << network_class;
      EXPECT_EQ(cell.latencies_ms.size(), 25u);
    }
  }
}

TEST_F(StudyTest, CellularIsSlowestAndMostVariableEverywhere) {
  // Observation 1 of the paper, for every site.
  for (std::size_t site = 0; site < workload::figure3_profiles().size();
       ++site) {
    const auto wired = study_->run_cell(site, workload::kWiredCampus);
    const auto wifi = study_->run_cell(site, workload::kWifiHome);
    const auto cellular = study_->run_cell(site, workload::kCellularMobile);
    EXPECT_GT(cellular.trimmed.mean, wifi.trimmed.mean) << wired.website;
    EXPECT_GT(wifi.trimmed.mean, wired.trimmed.mean) << wired.website;
    EXPECT_GT(cellular.latencies_ms.stddev(), wired.latencies_ms.stddev())
        << wired.website;
  }
}

TEST_F(StudyTest, DistributionSharesSumToOne) {
  const auto cell = study_->run_cell(0, workload::kWiredCampus);
  double total = 0.0;
  for (const auto& key : cell.distribution.keys_by_count()) {
    total += cell.distribution.share(key);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Every answer classified into a known pool (no "unknown" keys).
  for (const auto& key : cell.distribution.keys_by_count()) {
    EXPECT_EQ(key.find("unknown"), std::string::npos) << key;
  }
}

TEST_F(StudyTest, MixDiffersAcrossNetworksForSameDomain) {
  // Observation 2: the same domain queried from the same location lands on
  // different pools depending on the access network.
  MeasurementStudy::Config config;
  config.queries_per_cell = 80;
  MeasurementStudy study(config);

  const auto& profile = workload::figure3_profiles()[1];  // Agoda: 2 pools
  const auto wired = study.run_cell(1, workload::kWiredCampus);
  const auto cellular = study.run_cell(1, workload::kCellularMobile);
  const std::string label =
      profile.pools[0].provider + " (" + profile.pools[0].cidr + ")";
  // Weights: wired 0.80 on the /24, cellular 0.15.
  EXPECT_GT(wired.distribution.share(label),
            cellular.distribution.share(label) + 0.3);
}

TEST_F(StudyTest, ClientAndRouterSideDistributionsAgree) {
  // What the client classifies from dig output (the paper's method) must
  // match what the router actually decided — same counts per pool.
  const std::size_t site = 0;  // Airbnb
  const auto cell = study_->run_cell(site, workload::kWiredCampus);
  const auto& router_side =
      study_->router(site).distribution(workload::kWiredCampus);
  // The runner's 2 warmup queries hit the router but are excluded from the
  // client-side sample, so totals differ by exactly the warmup count and
  // per-pool counts by at most it.
  ASSERT_EQ(router_side.total(), cell.distribution.total() + 2);
  for (const auto& key : cell.distribution.keys_by_count()) {
    const auto client = cell.distribution.count(key);
    const auto router = router_side.count(key);
    EXPECT_GE(router, client) << key;
    EXPECT_LE(router, client + 2) << key;
  }
}

TEST_F(StudyTest, TrimmedBarWithinWhiskers) {
  const auto cell = study_->run_cell(2, workload::kCellularMobile);
  EXPECT_LE(cell.trimmed.min, cell.trimmed.mean);
  EXPECT_GE(cell.trimmed.max, cell.trimmed.mean);
  EXPECT_GT(cell.trimmed.mean, 0.0);
}

TEST_F(StudyTest, PerDomainLatencyTracksProviderDistance) {
  // Booking/Expedia (CloudFront, farther in our model) should be slower
  // than Agoda (Akamai, closest) on the same network.
  const auto agoda = study_->run_cell(1, workload::kWiredCampus);
  const auto expedia = study_->run_cell(3, workload::kWiredCampus);
  EXPECT_GT(expedia.trimmed.mean, agoda.trimmed.mean);
}

TEST_F(StudyTest, RunAllCoversTheGrid) {
  MeasurementStudy::Config config;
  config.queries_per_cell = 12;  // the paper's "at least 12 tests"
  MeasurementStudy study(config);
  const auto cells = study.run_all();
  EXPECT_EQ(cells.size(), 15u);  // 5 sites x 3 networks
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.failures, 0u) << cell.website << "/" << cell.network_class;
    EXPECT_GE(cell.latencies_ms.size(), 12u);
  }
}

}  // namespace
}  // namespace mecdns::core
