// Coverage for the smaller public surfaces: printing/debug helpers, the
// logger, latency-model metadata and assorted accessors.
#include <gtest/gtest.h>

#include <sstream>

#include "dns/message.h"
#include "dns/zone.h"
#include "mec/cluster.h"
#include "simnet/latency.h"
#include "util/log.h"
#include "util/stats.h"

namespace mecdns {
namespace {

TEST(Printing, HistogramToString) {
  util::Histogram histogram(0, 10, 5);
  histogram.add(1);
  histogram.add(1.5);
  histogram.add(9);
  histogram.add(42);
  const std::string text = histogram.to_string();
  EXPECT_NE(text.find("[0, 2) 2"), std::string::npos);
  EXPECT_NE(text.find("[8, 10) 1"), std::string::npos);
  EXPECT_NE(text.find("overflow 1"), std::string::npos);
}

TEST(Printing, MessageToStringMentionsEverySection) {
  dns::Message msg = dns::make_query(
      7, dns::DnsName::must_parse("www.example.com"), dns::RecordType::kA);
  msg.header.qr = true;
  msg.answers.push_back(dns::make_a(
      dns::DnsName::must_parse("www.example.com"),
      simnet::Ipv4Address::must_parse("198.18.0.1"), 30));
  msg.authorities.push_back(dns::make_ns(
      dns::DnsName::must_parse("example.com"),
      dns::DnsName::must_parse("ns1.example.com"), 300));
  msg.edns = dns::Edns{};
  dns::ClientSubnet ecs;
  ecs.address = simnet::Ipv4Address::must_parse("203.0.113.0");
  msg.edns->client_subnet = ecs;

  const std::string text = msg.to_string();
  EXPECT_NE(text.find("response"), std::string::npos);
  EXPECT_NE(text.find("www.example.com"), std::string::npos);
  EXPECT_NE(text.find("198.18.0.1"), std::string::npos);
  EXPECT_NE(text.find("NS"), std::string::npos);
  EXPECT_NE(text.find("ecs=203.0.113.0/24"), std::string::npos);
}

TEST(Printing, RecordToStringByType) {
  EXPECT_NE(dns::make_cname(dns::DnsName::must_parse("a.test"),
                            dns::DnsName::must_parse("b.test"), 1)
                .to_string()
                .find("CNAME b.test"),
            std::string::npos);
  EXPECT_NE(dns::make_txt(dns::DnsName::must_parse("a.test"), {"hi"}, 1)
                .to_string()
                .find("\"hi\""),
            std::string::npos);
}

TEST(Printing, EnumNames) {
  EXPECT_EQ(dns::to_string(dns::RCode::kNxDomain), "NXDOMAIN");
  EXPECT_EQ(dns::to_string(dns::RecordType::kSoa), "SOA");
  EXPECT_EQ(dns::to_string(static_cast<dns::RecordType>(99)), "TYPE99");
  EXPECT_EQ(dns::to_string(dns::LookupStatus::kDelegation), "DELEGATION");
}

TEST(Logging, ThresholdGatesOutput) {
  // Capture stderr via the log level: messages below the threshold are
  // dropped without evaluating side effects of the sink.
  util::set_log_level(util::LogLevel::kWarn);
  EXPECT_EQ(util::log_level(), util::LogLevel::kWarn);
  MECDNS_LOG(kInfo, "test") << "this is dropped";
  MECDNS_LOG(kError, "test") << "this is emitted";
  util::set_log_level(util::LogLevel::kOff);
}

TEST(LatencyModel, DescriptionsAndMeans) {
  const auto constant =
      simnet::LatencyModel::constant(simnet::SimTime::millis(2));
  EXPECT_NE(constant.description().find("constant"), std::string::npos);
  const auto uniform = simnet::LatencyModel::uniform(
      simnet::SimTime::millis(2), simnet::SimTime::millis(4));
  EXPECT_EQ(uniform.mean(), simnet::SimTime::millis(3));
  const auto lognormal = simnet::LatencyModel::lognormal(
      simnet::SimTime::millis(1), simnet::SimTime::millis(1), 0.5);
  EXPECT_GT(lognormal.mean(), simnet::SimTime::millis(2));
}

TEST(Cluster, WorkerAccessors) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(1));
  mec::MecCluster cluster(net, {});
  const simnet::NodeId w0 = cluster.add_worker("a");
  const simnet::NodeId w1 = cluster.add_worker("b");
  EXPECT_EQ(cluster.worker(0), w0);
  EXPECT_EQ(cluster.worker(1), w1);
  EXPECT_EQ(net.node_name(w1), "mec-b");
}

TEST(Network, NodeNamesAndLookup) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(1));
  const auto addr = simnet::Ipv4Address::must_parse("10.0.0.1");
  const simnet::NodeId node = net.add_node("alpha", addr);
  EXPECT_EQ(net.node_name(node), "alpha");
  EXPECT_EQ(net.find_node(addr), node);
  EXPECT_EQ(net.find_node(simnet::Ipv4Address::must_parse("9.9.9.9")),
            simnet::kInvalidNode);
  EXPECT_EQ(net.node_count(), 1u);
}

TEST(Network, SelfLinkAndBadNodeRejected) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(1));
  const simnet::NodeId node =
      net.add_node("a", simnet::Ipv4Address::must_parse("10.0.0.1"));
  EXPECT_THROW(net.add_link(node, node,
                            simnet::LatencyModel::constant(
                                simnet::SimTime::millis(1))),
               std::invalid_argument);
  EXPECT_THROW(net.add_link(node, 99,
                            simnet::LatencyModel::constant(
                                simnet::SimTime::millis(1))),
               std::out_of_range);
  EXPECT_THROW(net.open_socket(99, 1, nullptr), std::out_of_range);
}

TEST(Network, SocketOnAddresslessNodeRejected) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(1));
  const simnet::NodeId bare = net.add_node("bare");
  EXPECT_THROW(net.open_socket(bare, 53, nullptr), std::logic_error);
}

}  // namespace
}  // namespace mecdns
