// Recursive resolver tests: full iteration over an in-sim hierarchy,
// caching, CNAME chasing across zones, glueless NS resolution, negatives,
// and ECS forwarding.
#include <gtest/gtest.h>

#include "dns/hierarchy.h"
#include "dns/recursive.h"
#include "dns/stub.h"

namespace mecdns::dns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest() : net_(sim_, util::Rng(9)) {
    backbone_ = net_.add_node("backbone", Ipv4Address::must_parse("192.0.2.1"));
    hierarchy_ = std::make_unique<PublicDnsHierarchy>(
        net_, backbone_, LatencyModel::constant(SimTime::millis(10)),
        LatencyModel::constant(SimTime::micros(500)));
    hierarchy_->ensure_tld("com", Ipv4Address::must_parse("199.7.50.1"),
                           LatencyModel::constant(SimTime::millis(10)));
    hierarchy_->ensure_tld("net", Ipv4Address::must_parse("199.7.50.2"),
                           LatencyModel::constant(SimTime::millis(10)));

    AuthoritativeServer& example = hierarchy_->add_authoritative(
        DnsName::must_parse("example.com"),
        Ipv4Address::must_parse("198.51.100.5"),
        LatencyModel::constant(SimTime::millis(8)));
    Zone* zone = example.find_zone(DnsName::must_parse("example.com"));
    zone->must_add(make_a(DnsName::must_parse("www.example.com"),
                          Ipv4Address::must_parse("198.18.0.1"), 300));
    zone->must_add(make_a(DnsName::must_parse("volatile.example.com"),
                          Ipv4Address::must_parse("198.18.0.9"), 0));
    zone->must_add(make_cname(DnsName::must_parse("alias.example.com"),
                              DnsName::must_parse("target.example.net"),
                              300));

    AuthoritativeServer& example_net = hierarchy_->add_authoritative(
        DnsName::must_parse("example.net"),
        Ipv4Address::must_parse("198.51.100.6"),
        LatencyModel::constant(SimTime::millis(8)));
    Zone* net_zone = example_net.find_zone(DnsName::must_parse("example.net"));
    net_zone->must_add(make_a(DnsName::must_parse("target.example.net"),
                              Ipv4Address::must_parse("198.18.0.2"), 300));

    resolver_node_ =
        net_.add_node("resolver", Ipv4Address::must_parse("10.53.0.53"));
    net_.add_link(resolver_node_, backbone_,
                  LatencyModel::constant(SimTime::millis(2)));
    RecursiveResolver::Config config;
    config.root_servers = hierarchy_->root_hints();
    resolver_ = std::make_unique<RecursiveResolver>(
        net_, resolver_node_, "resolver",
        LatencyModel::constant(SimTime::micros(800)), config);

    client_node_ = net_.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
    net_.add_link(client_node_, resolver_node_,
                  LatencyModel::constant(SimTime::millis(1)));
    stub_ = std::make_unique<StubResolver>(
        net_, client_node_,
        Endpoint{Ipv4Address::must_parse("10.53.0.53"), kDnsPort});
  }

  StubResult resolve(const std::string& name,
                     RecordType type = RecordType::kA) {
    StubResult out;
    bool done = false;
    stub_->resolve(DnsName::must_parse(name), type,
                   [&](const StubResult& result) {
                     out = result;
                     done = true;
                   });
    sim_.run();
    EXPECT_TRUE(done);
    return out;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId backbone_;
  simnet::NodeId resolver_node_;
  simnet::NodeId client_node_;
  std::unique_ptr<PublicDnsHierarchy> hierarchy_;
  std::unique_ptr<RecursiveResolver> resolver_;
  std::unique_ptr<StubResolver> stub_;
};

TEST_F(ResolverTest, FullIterativeResolution) {
  const StubResult result = resolve("www.example.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.0.1"));
  EXPECT_TRUE(result.response.header.ra);
  // Three upstream queries: root -> com -> example.com.
  EXPECT_EQ(resolver_->upstream_queries(), 3u);
}

TEST_F(ResolverTest, SecondQueryServedFromCache) {
  resolve("www.example.com");
  const auto upstream_before = resolver_->upstream_queries();
  const StubResult result = resolve("www.example.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(resolver_->upstream_queries(), upstream_before);  // pure cache hit
  // Cached answer: only the client RTT + processing.
  EXPECT_LT(result.latency, SimTime::millis(4));
}

TEST_F(ResolverTest, SiblingNameReusesDelegation) {
  resolve("www.example.com");
  const auto upstream_before = resolver_->upstream_queries();
  resolve("volatile.example.com");
  // Only one more upstream query: straight to the cached example.com NS.
  EXPECT_EQ(resolver_->upstream_queries(), upstream_before + 1);
}

TEST_F(ResolverTest, ZeroTtlAnswerNotCached) {
  resolve("volatile.example.com");
  const auto upstream_before = resolver_->upstream_queries();
  resolve("volatile.example.com");
  EXPECT_EQ(resolver_->upstream_queries(), upstream_before + 1);
}

TEST_F(ResolverTest, CnameAcrossZonesChased) {
  const StubResult result = resolve("alias.example.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.0.2"));
  // Answer carries the CNAME and the final A.
  EXPECT_EQ(result.response.answers.size(), 2u);
}

TEST_F(ResolverTest, NxDomainPropagatesAndCaches) {
  const StubResult first = resolve("missing.example.com");
  EXPECT_EQ(first.rcode, RCode::kNxDomain);
  const auto upstream_before = resolver_->upstream_queries();
  const StubResult second = resolve("missing.example.com");
  EXPECT_EQ(second.rcode, RCode::kNxDomain);
  EXPECT_EQ(resolver_->upstream_queries(), upstream_before);  // negative hit
}

TEST_F(ResolverTest, UnresolvableTldServfails) {
  const StubResult result = resolve("www.nowhere.zzz");
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.rcode == RCode::kServFail ||
              result.rcode == RCode::kNxDomain);
}

TEST_F(ResolverTest, GluelessNameserverResolvedOutOfBand) {
  // Delegate glueless.com to a nameserver whose address must itself be
  // resolved (ns.example.net, no glue at the TLD).
  AuthoritativeServer& glueless = hierarchy_->add_authoritative(
      DnsName::must_parse("helper.net"), Ipv4Address::must_parse("198.51.100.7"),
      LatencyModel::constant(SimTime::millis(8)));
  Zone* helper_zone = glueless.find_zone(DnsName::must_parse("helper.net"));
  helper_zone->must_add(make_a(DnsName::must_parse("ns.helper.net"),
                               Ipv4Address::must_parse("198.51.100.8"), 300));

  // The glueless.com server lives at 198.51.100.8 (= ns.helper.net).
  const simnet::NodeId node = net_.add_node(
      "glueless-auth", Ipv4Address::must_parse("198.51.100.8"));
  net_.add_link(node, backbone_, LatencyModel::constant(SimTime::millis(8)));
  auto auth = std::make_unique<AuthoritativeServer>(
      net_, node, "glueless-auth",
      LatencyModel::constant(SimTime::micros(500)));
  Zone& zone = auth->add_zone(DnsName::must_parse("glueless.com"));
  zone.must_add(make_soa(DnsName::must_parse("glueless.com"),
                         DnsName::must_parse("ns.helper.net"), 1, 300, 300));
  zone.must_add(make_a(DnsName::must_parse("www.glueless.com"),
                       Ipv4Address::must_parse("198.18.0.77"), 300));

  // Register the delegation WITHOUT glue: NS only.
  Zone& com_zone = *hierarchy_->tld("com").find_zone(DnsName::must_parse("com"));
  com_zone.must_add(make_ns(DnsName::must_parse("glueless.com"),
                            DnsName::must_parse("ns.helper.net"), 3600));

  const StubResult result = resolve("www.glueless.com");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(*result.address, Ipv4Address::must_parse("198.18.0.77"));
}

TEST_F(ResolverTest, QueryBudgetBoundsWork) {
  RecursiveResolver::Config tight;
  tight.root_servers = hierarchy_->root_hints();
  tight.query_budget = 1;  // not enough for root->tld->auth
  const simnet::NodeId node =
      net_.add_node("tight-resolver", Ipv4Address::must_parse("10.53.0.54"));
  net_.add_link(node, backbone_, LatencyModel::constant(SimTime::millis(2)));
  RecursiveResolver tight_resolver(
      net_, node, "tight", LatencyModel::constant(SimTime::micros(500)),
      tight);
  StubResolver stub(net_, client_node_,
                    Endpoint{Ipv4Address::must_parse("10.53.0.54"), kDnsPort});
  net_.add_link(client_node_, node,
                LatencyModel::constant(SimTime::millis(1)));

  StubResult out;
  stub.resolve(DnsName::must_parse("fresh.example.com"), RecordType::kA,
               [&](const StubResult& result) { out = result; });
  sim_.run();
  EXPECT_EQ(out.rcode, RCode::kServFail);
}

TEST_F(ResolverTest, EcsForwardedWhenEnabled) {
  resolver_->set_ecs_mode(EcsMode::kForward);
  // Track what the authoritative server received.
  const StubResult result = resolve("www.example.com");
  EXPECT_TRUE(result.ok);
  // The response to the client echoes no ECS (client sent none), but the
  // resolver attached a synthesized /24 upstream. Verify via a scoped-answer
  // behaviour: resolve a name from a second client subnet and confirm the
  // resolver still works (structural check).
  EXPECT_TRUE(result.response.answers.size() >= 1);
}

TEST_F(ResolverTest, ClientEcsForwardedVerbatim) {
  resolver_->set_ecs_mode(EcsMode::kForward);
  ClientSubnet ecs;
  ecs.address = Ipv4Address::must_parse("203.0.113.0");
  ecs.source_prefix = 24;
  StubResult out;
  stub_->resolve_with_ecs(DnsName::must_parse("www.example.com"),
                          RecordType::kA, ecs,
                          [&](const StubResult& result) { out = result; });
  sim_.run();
  EXPECT_TRUE(out.ok);
  ASSERT_TRUE(out.response.edns.has_value());
  ASSERT_TRUE(out.response.edns->client_subnet.has_value());
  EXPECT_EQ(out.response.edns->client_subnet->subnet().to_string(),
            "203.0.113.0/24");
}

}  // namespace
}  // namespace mecdns::dns
