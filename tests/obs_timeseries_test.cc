// obs/timeseries tests: sim-time windowing, sparse storage, merge algebra,
// annotations and byte-stable JSON export.
#include <gtest/gtest.h>

#include <string>

#include "obs/timeseries.h"
#include "simnet/simulator.h"

namespace mecdns::obs {
namespace {

using simnet::SimTime;

TEST(TimeSeriesTest, BucketsEventsByWindow) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  sim.schedule_at(SimTime::millis(100), [&] { series.add("q"); });
  sim.schedule_at(SimTime::millis(499), [&] { series.add("q"); });
  sim.schedule_at(SimTime::millis(500), [&] { series.add("q"); });
  sim.schedule_at(SimTime::millis(1700), [&] {
    series.observe("lookup_ms", 4.0);
  });
  sim.run();

  ASSERT_EQ(series.windows().size(), 3u);  // sparse: window 2 never written
  const auto& w0 = series.windows()[0];
  EXPECT_EQ(w0.index, 0);
  EXPECT_EQ(w0.start, SimTime::zero());
  EXPECT_EQ(w0.end, SimTime::millis(500));
  EXPECT_EQ(w0.metrics.counter_value("q"), 2u);
  EXPECT_EQ(series.windows()[1].index, 1);
  EXPECT_EQ(series.windows()[1].metrics.counter_value("q"), 1u);
  EXPECT_EQ(series.windows()[2].index, 3);
  const LatencyHistogram* hist =
      series.windows()[2].metrics.find_histogram("lookup_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 1u);

  EXPECT_NE(series.window_at(SimTime::millis(250)), nullptr);
  EXPECT_EQ(series.window_at(SimTime::millis(250))->index, 0);
  EXPECT_EQ(series.window_at(SimTime::millis(1100)), nullptr);  // sparse gap
}

TEST(TimeSeriesTest, TotalsCollapseAllWindows) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  sim.schedule_at(SimTime::millis(10), [&] {
    series.add("q", 3);
    series.observe("ms", 1.0);
  });
  sim.schedule_at(SimTime::millis(900), [&] {
    series.add("q", 2);
    series.observe("ms", 5.0);
  });
  sim.run();

  Registry totals = series.totals();
  EXPECT_EQ(totals.counter_value("q"), 5u);
  EXPECT_EQ(totals.histogram("ms").count(), 2u);
  EXPECT_DOUBLE_EQ(totals.histogram("ms").mean(), 3.0);
}

TEST(TimeSeriesTest, MergeAlignsWindowsByIndex) {
  simnet::Simulator sim_a;
  simnet::Simulator sim_b;
  TimeSeries a(sim_a, SimTime::millis(500));
  TimeSeries b(sim_b, SimTime::millis(500));
  sim_a.schedule_at(SimTime::millis(100), [&] { a.add("q"); });
  sim_a.schedule_at(SimTime::millis(1100), [&] { a.add("q"); });
  sim_a.run();
  sim_b.schedule_at(SimTime::millis(200), [&] {
    b.add("q", 4);
    b.annotate("fault", "link down");
  });
  sim_b.schedule_at(SimTime::millis(600), [&] { b.add("q"); });
  sim_b.run();

  ASSERT_TRUE(a.merge(b));
  ASSERT_EQ(a.windows().size(), 3u);  // indices 0 (merged), 1 (from b), 2
  EXPECT_EQ(a.windows()[0].metrics.counter_value("q"), 5u);
  EXPECT_EQ(a.windows()[1].metrics.counter_value("q"), 1u);
  EXPECT_EQ(a.windows()[2].metrics.counter_value("q"), 1u);
  ASSERT_EQ(a.annotations().size(), 1u);
  EXPECT_EQ(a.annotations()[0].kind, "fault");
}

TEST(TimeSeriesTest, MergeRejectsWindowSizeMismatch) {
  simnet::Simulator sim;
  TimeSeries a(sim, SimTime::millis(500));
  TimeSeries b(sim, SimTime::millis(250));
  sim.schedule_at(SimTime::millis(1), [&] {
    a.add("q");
    b.add("q");
  });
  sim.run();
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.windows()[0].metrics.counter_value("q"), 1u);  // untouched
}

TEST(TimeSeriesTest, AnnotationsCarrySimTimestamps) {
  simnet::Simulator sim;
  TimeSeries series(sim, SimTime::millis(500));
  sim.schedule_at(SimTime::millis(750), [&] {
    series.annotate("node-down", "mec-ldns killed");
  });
  sim.run();
  ASSERT_EQ(series.annotations().size(), 1u);
  EXPECT_EQ(series.annotations()[0].at, SimTime::millis(750));
  EXPECT_EQ(series.annotations()[0].kind, "node-down");
  // Annotations alone don't materialize a metrics window.
  EXPECT_TRUE(series.windows().empty());
  EXPECT_FALSE(series.empty());
}

TEST(TimeSeriesTest, JsonIsByteStableAndWellFormed) {
  const auto build = [](simnet::Simulator& sim, TimeSeries& series) {
    sim.schedule_at(SimTime::millis(100), [&] {
      series.add("runner.queries");
      series.observe("runner.lookup_ms", 27.819302);
    });
    sim.schedule_at(SimTime::millis(800), [&] {
      series.annotate("fault", "link-loss p=0.4");
    });
    sim.run();
  };
  simnet::Simulator sim_a;
  TimeSeries a(sim_a, SimTime::millis(500));
  build(sim_a, a);
  simnet::Simulator sim_b;
  TimeSeries b(sim_b, SimTime::millis(500));
  build(sim_b, b);

  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"window_ms\":500"), std::string::npos);
  EXPECT_NE(json.find("\"runner.queries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"t_ms\":800"), std::string::npos);
}

}  // namespace
}  // namespace mecdns::obs
