#include <gtest/gtest.h>

#include "dns/cache.h"

namespace mecdns::dns {
namespace {

using simnet::SimTime;

ResourceRecord a_record(const std::string& name, std::uint32_t ttl) {
  return make_a(DnsName::must_parse(name),
                simnet::Ipv4Address::must_parse("198.18.0.1"), ttl);
}

std::vector<ResourceRecord> soa_with_minimum(std::uint32_t minimum,
                                             std::uint32_t ttl) {
  return {make_soa(DnsName::must_parse("example.com"),
                   DnsName::must_parse("ns1.example.com"), 1, minimum, ttl)};
}

TEST(DnsCache, HitWithinTtl) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  const auto hit = cache.lookup(DnsName::must_parse("www.example.com"),
                                RecordType::kA, SimTime::seconds(59));
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->negative);
  ASSERT_EQ(hit->records.size(), 1u);
}

TEST(DnsCache, ExpiresAtTtl) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("www.example.com"),
                           RecordType::kA, SimTime::seconds(60))
                   .has_value());
  EXPECT_EQ(cache.stats().expired, 1u);
}

TEST(DnsCache, TtlDecrementsWithAge) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 100)}, SimTime::seconds(0));
  const auto hit = cache.lookup(DnsName::must_parse("www.example.com"),
                                RecordType::kA, SimTime::seconds(40));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->records[0].ttl, 60u);
}

TEST(DnsCache, ZeroTtlNeverCached) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 0)}, SimTime::seconds(0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("www.example.com"),
                           RecordType::kA, SimTime::seconds(0))
                   .has_value());
}

TEST(DnsCache, RrsetUsesMinimumTtl) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 100),
                a_record("www.example.com", 10)},
               SimTime::seconds(0));
  EXPECT_TRUE(cache
                  .lookup(DnsName::must_parse("www.example.com"),
                          RecordType::kA, SimTime::seconds(9))
                  .has_value());
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("www.example.com"),
                           RecordType::kA, SimTime::seconds(10))
                   .has_value());
}

TEST(DnsCache, NegativeCachingUsesSoaMinimum) {
  DnsCache cache;
  // RFC 2308: negative TTL = min(SOA TTL, SOA.minimum) = min(3600, 30) = 30.
  cache.insert_negative(DnsName::must_parse("gone.example.com"),
                        RecordType::kA, RCode::kNxDomain,
                        soa_with_minimum(30, 3600), SimTime::seconds(0));
  const auto hit = cache.lookup(DnsName::must_parse("gone.example.com"),
                                RecordType::kA, SimTime::seconds(29));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->negative);
  EXPECT_EQ(hit->rcode, RCode::kNxDomain);
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("gone.example.com"),
                           RecordType::kA, SimTime::seconds(31))
                   .has_value());
}

TEST(DnsCache, NegativeTtlCappedBySoaRecordTtl) {
  DnsCache cache;
  // min(SOA TTL=20, minimum=3600) = 20.
  cache.insert_negative(DnsName::must_parse("gone.example.com"),
                        RecordType::kA, RCode::kNxDomain,
                        soa_with_minimum(3600, 20), SimTime::seconds(0));
  EXPECT_TRUE(cache
                  .lookup(DnsName::must_parse("gone.example.com"),
                          RecordType::kA, SimTime::seconds(19))
                  .has_value());
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("gone.example.com"),
                           RecordType::kA, SimTime::seconds(21))
                   .has_value());
}

TEST(DnsCache, NegativeWithoutSoaNotCached) {
  DnsCache cache;
  cache.insert_negative(DnsName::must_parse("gone.example.com"),
                        RecordType::kA, RCode::kNxDomain, {},
                        SimTime::seconds(0));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCache, KeyIsNameAndType) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("www.example.com"),
                           RecordType::kTxt, SimTime::seconds(1))
                   .has_value());
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("other.example.com"),
                           RecordType::kA, SimTime::seconds(1))
                   .has_value());
}

TEST(DnsCache, EvictsClosestToExpiryWhenFull) {
  DnsCache cache(/*max_entries=*/2);
  cache.insert(DnsName::must_parse("short.example.com"), RecordType::kA,
               {a_record("short.example.com", 10)}, SimTime::seconds(0));
  cache.insert(DnsName::must_parse("long.example.com"), RecordType::kA,
               {a_record("long.example.com", 1000)}, SimTime::seconds(0));
  cache.insert(DnsName::must_parse("new.example.com"), RecordType::kA,
               {a_record("new.example.com", 500)}, SimTime::seconds(0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Heap-backed eviction examines exactly one item here: the soonest-expiry
  // entry is live, so no stale heap entries had to be skipped.
  EXPECT_EQ(cache.stats().eviction_scan_steps, 1u);
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("short.example.com"),
                           RecordType::kA, SimTime::seconds(1))
                   .has_value());
  EXPECT_TRUE(cache
                  .lookup(DnsName::must_parse("long.example.com"),
                          RecordType::kA, SimTime::seconds(1))
                  .has_value());
}

TEST(DnsCache, EvictionSkipsStaleHeapEntries) {
  DnsCache cache(/*max_entries=*/2);
  // Refreshing an entry leaves its original expiry-heap item behind as a
  // stale tombstone; eviction must skip it (counting the scan step) rather
  // than evict the refreshed entry at its old deadline.
  cache.insert(DnsName::must_parse("a.example.com"), RecordType::kA,
               {a_record("a.example.com", 10)}, SimTime::seconds(0));
  cache.insert(DnsName::must_parse("a.example.com"), RecordType::kA,
               {a_record("a.example.com", 1000)}, SimTime::seconds(0));
  cache.insert(DnsName::must_parse("b.example.com"), RecordType::kA,
               {a_record("b.example.com", 500)}, SimTime::seconds(0));
  cache.insert(DnsName::must_parse("c.example.com"), RecordType::kA,
               {a_record("c.example.com", 700)}, SimTime::seconds(0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // One stale heap item skipped, then the live soonest-expiry victim.
  EXPECT_EQ(cache.stats().eviction_scan_steps, 2u);
  EXPECT_TRUE(cache
                  .lookup(DnsName::must_parse("a.example.com"), RecordType::kA,
                          SimTime::seconds(1))
                  .has_value());
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("b.example.com"), RecordType::kA,
                           SimTime::seconds(1))
                   .has_value());
}

TEST(DnsCache, FlushAndFlushName) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("a.example.com"), RecordType::kA,
               {a_record("a.example.com", 60)}, SimTime::seconds(0));
  cache.insert(DnsName::must_parse("b.example.com"), RecordType::kA,
               {a_record("b.example.com", 60)}, SimTime::seconds(0));
  cache.flush_name(DnsName::must_parse("a.example.com"));
  EXPECT_EQ(cache.size(), 1u);
  cache.flush();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCache, HitRateAccounting) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("a.example.com"), RecordType::kA,
               {a_record("a.example.com", 60)}, SimTime::seconds(0));
  (void)cache.lookup(DnsName::must_parse("a.example.com"), RecordType::kA,
                     SimTime::seconds(1));
  (void)cache.lookup(DnsName::must_parse("miss.example.com"), RecordType::kA,
                     SimTime::seconds(1));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(DnsCache, ServeStaleAnswersExpiredEntry) {
  DnsCache cache;
  cache.set_serve_stale(true);
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  // Expired for the regular lookup path...
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("www.example.com"),
                           RecordType::kA, SimTime::seconds(90))
                   .has_value());
  // ...but the stale path still has it, at the RFC 8767 §4 30s TTL.
  const auto stale = cache.lookup_stale(
      DnsName::must_parse("www.example.com"), RecordType::kA,
      SimTime::seconds(90));
  ASSERT_TRUE(stale.has_value());
  ASSERT_EQ(stale->records.size(), 1u);
  EXPECT_EQ(stale->records[0].ttl, 30u);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
}

TEST(DnsCache, ServeStaleOffByDefault) {
  DnsCache cache;
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  EXPECT_FALSE(cache
                   .lookup_stale(DnsName::must_parse("www.example.com"),
                                 RecordType::kA, SimTime::seconds(90))
                   .has_value());
  EXPECT_EQ(cache.stats().stale_hits, 0u);
}

TEST(DnsCache, ServeStaleNeverServesFreshEntryAsStale) {
  // A live entry belongs to lookup(); lookup_stale() must not double-serve.
  DnsCache cache;
  cache.set_serve_stale(true);
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  EXPECT_FALSE(cache
                   .lookup_stale(DnsName::must_parse("www.example.com"),
                                 RecordType::kA, SimTime::seconds(10))
                   .has_value());
}

TEST(DnsCache, ServeStaleWindowBoundsRetention) {
  DnsCache cache;
  cache.set_serve_stale(true, /*max_stale=*/SimTime::seconds(100));
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  // Within expiry + max_stale: served.
  EXPECT_TRUE(cache
                  .lookup_stale(DnsName::must_parse("www.example.com"),
                                RecordType::kA, SimTime::seconds(159))
                  .has_value());
  // Past the window: gone for good.
  EXPECT_FALSE(cache
                   .lookup_stale(DnsName::must_parse("www.example.com"),
                                 RecordType::kA, SimTime::seconds(161))
                   .has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DnsCache, ServeStaleKeepsExpiredEntryResident) {
  // With serve-stale on, a regular lookup of an expired entry is a miss
  // but must not erase the entry (it is the stale path's inventory).
  DnsCache cache;
  cache.set_serve_stale(true);
  cache.insert(DnsName::must_parse("www.example.com"), RecordType::kA,
               {a_record("www.example.com", 60)}, SimTime::seconds(0));
  EXPECT_FALSE(cache
                   .lookup(DnsName::must_parse("www.example.com"),
                           RecordType::kA, SimTime::seconds(61))
                   .has_value());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache
                  .lookup_stale(DnsName::must_parse("www.example.com"),
                                RecordType::kA, SimTime::seconds(61))
                  .has_value());
}

}  // namespace
}  // namespace mecdns::dns
