// util/json tests: the reader mecdns_report uses to ingest the byte-stable
// JSON our emitters produce — including exact double round-trips through
// obs::format_double.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace mecdns::util {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").value().is_null());
  EXPECT_TRUE(JsonValue::parse("true").value().as_bool());
  EXPECT_FALSE(JsonValue::parse("false").value().as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").value().as_double(), -1250.0);
  EXPECT_EQ(JsonValue::parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const auto doc = JsonValue::parse(
      "{\"a\": [1, 2, {\"b\": \"x\"}], \"c\": {\"d\": null}, \"e\": 3}");
  ASSERT_TRUE(doc.ok());
  const JsonValue& root = doc.value();
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.size(), 3u);
  EXPECT_EQ(root.get("a").size(), 3u);
  EXPECT_DOUBLE_EQ(root.get("a").at(1).as_double(), 2.0);
  EXPECT_EQ(root.get("a").at(2).get("b").as_string(), "x");
  EXPECT_TRUE(root.get("c").get("d").is_null());
  EXPECT_TRUE(root.has("e"));
  EXPECT_FALSE(root.has("missing"));
  // Out-of-range access degrades to null, never crashes.
  EXPECT_TRUE(root.get("a").at(99).is_null());
  EXPECT_TRUE(root.get("missing").get("deeper").is_null());
}

TEST(JsonTest, PreservesObjectMemberOrder) {
  const auto doc = JsonValue::parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
  ASSERT_TRUE(doc.ok());
  const auto& members = doc.value().members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonTest, DecodesEscapes) {
  const auto doc =
      JsonValue::parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").ok());
  EXPECT_FALSE(JsonValue::parse("{\"a\": 1,}").ok());
  EXPECT_FALSE(JsonValue::parse("[1, 2").ok());
  EXPECT_FALSE(JsonValue::parse("nul").ok());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::parse("\"bad \\q escape\"").ok());
  EXPECT_FALSE(JsonValue::parse("1 trailing").ok());
  // Pathological nesting is rejected, not a stack overflow.
  EXPECT_FALSE(JsonValue::parse(std::string(100, '[')).ok());
}

TEST(JsonTest, ParseFileReportsMissingFile) {
  const auto doc = JsonValue::parse_file("/nonexistent/nope.json");
  EXPECT_FALSE(doc.ok());
}

// The satellite guarantee: every double our emitters write via
// obs::format_double parses back to the exact same bits, independent of
// locale — the JSON files are lossless.
TEST(JsonTest, FormatDoubleRoundTripsExactly) {
  const double values[] = {0.0,    -0.0,   1.0,       0.1,   1.0 / 3.0,
                           20.0,   1e-300, 1e300,     -2.5,  123456.789,
                           5e-324, 0.06,   27.819302, 1e6,   3.0000000000000004};
  for (const double value : values) {
    const std::string text = obs::format_double(value);
    const auto parsed = JsonValue::parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    const double back = parsed.value().as_double();
    EXPECT_EQ(std::memcmp(&back, &value, sizeof(double)), 0)
        << value << " -> \"" << text << "\" -> " << back;
  }
}

TEST(JsonTest, ParsesRegistryJsonOutput) {
  obs::Registry registry;
  registry.add("runner.queries", 42);
  registry.set_gauge("sim.depth", 7.25);
  registry.histogram("lookup_ms").add(12.5);
  registry.histogram("lookup_ms").add(31.0);

  const auto doc = JsonValue::parse(registry.to_json());
  ASSERT_TRUE(doc.ok());
  const JsonValue& root = doc.value();
  EXPECT_DOUBLE_EQ(root.get("counters").get("runner.queries").as_double(),
                   42.0);
  EXPECT_DOUBLE_EQ(root.get("gauges").get("sim.depth").as_double(), 7.25);
  const JsonValue& hist = root.get("histograms").get("lookup_ms");
  EXPECT_DOUBLE_EQ(hist.get("count").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(hist.get("min").as_double(), 12.5);
  EXPECT_DOUBLE_EQ(hist.get("max").as_double(), 31.0);
  EXPECT_GE(hist.get("buckets").size(), 2u);
}

}  // namespace
}  // namespace mecdns::util
