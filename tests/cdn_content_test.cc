#include <gtest/gtest.h>

#include "cdn/content.h"

namespace mecdns::cdn {
namespace {

TEST(Url, ParseHostAndPath) {
  const Url url = Url::must_parse("video.demo1.mycdn.test/segments/0001.ts");
  EXPECT_EQ(url.host, dns::DnsName::must_parse("video.demo1.mycdn.test"));
  EXPECT_EQ(url.path, "/segments/0001.ts");
  EXPECT_EQ(url.to_string(), "video.demo1.mycdn.test/segments/0001.ts");
}

TEST(Url, SchemeStrippedAndDefaultPath) {
  EXPECT_EQ(Url::must_parse("http://a.example.com").path, "/");
  EXPECT_EQ(Url::must_parse("https://a.example.com/x").path, "/x");
}

TEST(Url, BadHostRejected) {
  EXPECT_FALSE(Url::parse("bad host/with space").ok());
  EXPECT_FALSE(Url::parse("").ok());
}

TEST(Url, Ordering) {
  const Url a = Url::must_parse("a.test/1");
  const Url b = Url::must_parse("a.test/2");
  const Url c = Url::must_parse("b.test/1");
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, Url::must_parse("A.TEST/1"));  // host case-insensitive
}

TEST(ContentCatalog, AddFindSeries) {
  ContentCatalog catalog;
  catalog.add(Url::must_parse("a.test/obj"), 100);
  catalog.add_series(dns::DnsName::must_parse("v.test"), "seg", 5, 1000);
  EXPECT_EQ(catalog.size(), 6u);
  EXPECT_EQ(catalog.total_bytes(), 5100u);
  EXPECT_TRUE(catalog.contains(Url::must_parse("v.test/seg0004")));
  EXPECT_FALSE(catalog.contains(Url::must_parse("v.test/seg0005")));
  EXPECT_EQ(catalog.find(Url::must_parse("a.test/obj"))->size_bytes, 100u);
}

TEST(ContentCatalog, DuplicateAddIsIdempotent) {
  ContentCatalog catalog;
  catalog.add(Url::must_parse("a.test/obj"), 100);
  catalog.add(Url::must_parse("a.test/obj"), 100);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.total_bytes(), 100u);
}

TEST(ContentProtocol, RequestRoundTrip) {
  const ContentRequest request{42, Url::must_parse("v.test/seg0001")};
  const auto decoded = decode_request(encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().url, request.url);
}

TEST(ContentProtocol, ResponseRoundTrip) {
  ContentResponse response;
  response.id = 7;
  response.url = Url::must_parse("v.test/x");
  response.status = 200;
  response.size_bytes = 123456;
  response.served_from_cache = true;
  const auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 7u);
  EXPECT_EQ(decoded.value().status, 200);
  EXPECT_EQ(decoded.value().size_bytes, 123456u);
  EXPECT_TRUE(decoded.value().served_from_cache);
}

TEST(ContentProtocol, MalformedRejected) {
  const std::string bad[] = {"", "GET", "GET x", "RSP 1 2", "PUT 1 a.test/x",
                             "GET notanumber a.test/x"};
  for (const auto& text : bad) {
    const std::vector<std::uint8_t> payload(text.begin(), text.end());
    EXPECT_FALSE(decode_request(payload).ok() && decode_response(payload).ok())
        << text;
  }
}

}  // namespace
}  // namespace mecdns::cdn
