// Link bandwidth and forwarder failover tests.
#include <gtest/gtest.h>

#include "cdn/cache_server.h"
#include "dns/plugin.h"
#include "dns/stub.h"

namespace mecdns {
namespace {

using simnet::Endpoint;
using simnet::Ipv4Address;
using simnet::LatencyModel;
using simnet::SimTime;

class BandwidthTest : public ::testing::Test {
 protected:
  BandwidthTest() : net_(sim_, util::Rng(141)) {
    a_ = net_.add_node("a", Ipv4Address::must_parse("10.0.0.1"));
    b_ = net_.add_node("b", Ipv4Address::must_parse("10.0.0.2"));
    link_ = net_.add_link(a_, b_,
                          LatencyModel::constant(SimTime::millis(5)));
  }

  SimTime one_way(std::size_t virtual_size) {
    SimTime arrival;
    simnet::UdpSocket* receiver =
        net_.open_socket(b_, 80, [&](const simnet::Packet&) {
          arrival = net_.now();
        });
    net_.open_socket(a_, 0, nullptr)
        ->send_to(Endpoint{Ipv4Address::must_parse("10.0.0.2"), 80}, {1, 2},
                  virtual_size);
    sim_.run();
    net_.close_socket(receiver);
    return arrival;
  }

  simnet::Simulator sim_;
  simnet::Network net_;
  simnet::NodeId a_;
  simnet::NodeId b_;
  simnet::LinkId link_;
};

TEST_F(BandwidthTest, UnlimitedByDefault) {
  EXPECT_EQ(one_way(100 * 1024 * 1024), SimTime::millis(5));
}

TEST_F(BandwidthTest, TransmissionDelayScalesWithSize) {
  net_.set_link_bandwidth(link_, 8'000'000);  // 8 Mbit/s = 1 MB/s
  const SimTime small = one_way(1000);        // +1 ms
  EXPECT_EQ(small, SimTime::millis(5) + SimTime::millis(1) +
                       SimTime::millis(5) * 0);  // 5ms prop + 1ms tx
  // Re-run with a megabyte: +1000 ms.
  net_.set_link_bandwidth(link_, 8'000'000);
  const SimTime big = one_way(1'000'000);
  EXPECT_EQ(big, small + SimTime::seconds(0.999) + SimTime::millis(5) * 0 +
                     (SimTime::millis(5) + SimTime::millis(1)));
}

TEST_F(BandwidthTest, PayloadSizeUsedWhenNoVirtualSize) {
  net_.set_link_bandwidth(link_, 8000);  // 1 kB/s
  // 2-byte payload => 2 ms transmission.
  EXPECT_EQ(one_way(0), SimTime::millis(5) + SimTime::millis(2));
}

TEST_F(BandwidthTest, ContentFetchTimeScalesWithObjectSize) {
  // Cache server behind a 16 Mbit/s access link: a 2 MB object takes ~1 s
  // to transfer, a 4 kB manifest is immediate.
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(3));
  const simnet::NodeId client =
      net.add_node("client", Ipv4Address::must_parse("10.1.0.1"));
  const simnet::NodeId edge =
      net.add_node("edge", Ipv4Address::must_parse("10.1.0.2"));
  const simnet::LinkId access =
      net.add_link(client, edge, LatencyModel::constant(SimTime::millis(10)));
  net.set_link_bandwidth(access, 16'000'000);

  cdn::CacheServer::Config config;
  cdn::CacheServer cache(net, edge, "edge", config);
  cache.warm(cdn::ContentObject{cdn::Url::must_parse("v.test/big"),
                                2 * 1024 * 1024});
  cache.warm(cdn::ContentObject{cdn::Url::must_parse("v.test/small"), 4096});

  cdn::ContentClient fetcher(net, client);
  SimTime big_time;
  SimTime small_time;
  fetcher.get(Endpoint{Ipv4Address::must_parse("10.1.0.2"),
                       cdn::kContentPort},
              cdn::Url::must_parse("v.test/big"),
              [&](util::Result<cdn::ContentResponse> r, SimTime latency) {
                ASSERT_TRUE(r.ok());
                big_time = latency;
              },
              SimTime::seconds(10));
  sim.run();
  fetcher.get(Endpoint{Ipv4Address::must_parse("10.1.0.2"),
                       cdn::kContentPort},
              cdn::Url::must_parse("v.test/small"),
              [&](util::Result<cdn::ContentResponse> r, SimTime latency) {
                ASSERT_TRUE(r.ok());
                small_time = latency;
              },
              SimTime::seconds(10));
  sim.run();
  // 2 MiB * 8 / 16 Mbit/s ~ 1.05 s transfer.
  EXPECT_GT(big_time, SimTime::seconds(1.0));
  EXPECT_LT(small_time, SimTime::millis(25));
}

// --- forwarder failover -----------------------------------------------------------

TEST(ForwardFailover, SecondUpstreamAnswersWhenFirstIsDead) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(151));
  const simnet::NodeId client =
      net.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
  const simnet::NodeId proxy =
      net.add_node("proxy", Ipv4Address::must_parse("10.0.0.2"));
  const simnet::NodeId up1 =
      net.add_node("up1", Ipv4Address::must_parse("10.0.0.3"));
  const simnet::NodeId up2 =
      net.add_node("up2", Ipv4Address::must_parse("10.0.0.4"));
  net.add_link(client, proxy, LatencyModel::constant(SimTime::millis(1)));
  net.add_link(proxy, up1, LatencyModel::constant(SimTime::millis(1)));
  net.add_link(proxy, up2, LatencyModel::constant(SimTime::millis(1)));

  const auto make_auth = [&](simnet::NodeId node, const char* name,
                             const char* answer) {
    auto server = std::make_unique<dns::AuthoritativeServer>(
        net, node, name, LatencyModel::constant(SimTime::micros(100)));
    dns::Zone& zone = server->add_zone(dns::DnsName::must_parse("f.test"));
    zone.must_add(dns::make_a(dns::DnsName::must_parse("www.f.test"),
                              Ipv4Address::must_parse(answer), 30));
    return server;
  };
  auto auth1 = make_auth(up1, "up1", "198.18.0.1");
  auto auth2 = make_auth(up2, "up2", "198.18.0.2");
  net.set_node_up(up1, false);  // primary upstream is down

  dns::PluginChainServer server(net, proxy, "proxy",
                                LatencyModel::constant(SimTime::micros(200)));
  dns::PluginChain& chain = server.add_default_view("default");
  dns::DnsTransport::Options options;
  options.timeout = SimTime::millis(100);
  auto forward = std::make_unique<dns::ForwardPlugin>(
      dns::DnsName::root(),
      std::vector<Endpoint>{
          {Ipv4Address::must_parse("10.0.0.3"), dns::kDnsPort},
          {Ipv4Address::must_parse("10.0.0.4"), dns::kDnsPort}},
      server.transport(), options);
  dns::ForwardPlugin* forward_ptr = forward.get();
  chain.add(std::move(forward));

  dns::StubResolver stub(net, client,
                         Endpoint{Ipv4Address::must_parse("10.0.0.2"),
                                  dns::kDnsPort},
                         dns::DnsTransport::Options{SimTime::seconds(2), 0});
  dns::StubResult out;
  stub.resolve(dns::DnsName::must_parse("www.f.test"), dns::RecordType::kA,
               [&](const dns::StubResult& result) { out = result; });
  sim.run();
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(*out.address, Ipv4Address::must_parse("198.18.0.2"));
  EXPECT_EQ(forward_ptr->failovers(), 1u);
  EXPECT_EQ(forward_ptr->upstream_failures(), 1u);
  // The answer took at least the failover timeout.
  EXPECT_GT(out.latency, SimTime::millis(100));
}

TEST(ForwardFailover, RoundRobinPolicySpreadsQueries) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(153));
  const simnet::NodeId client =
      net.add_node("client", Ipv4Address::must_parse("10.0.0.1"));
  const simnet::NodeId proxy =
      net.add_node("proxy", Ipv4Address::must_parse("10.0.0.2"));
  const simnet::NodeId up1 =
      net.add_node("up1", Ipv4Address::must_parse("10.0.0.3"));
  const simnet::NodeId up2 =
      net.add_node("up2", Ipv4Address::must_parse("10.0.0.4"));
  net.add_link(client, proxy, LatencyModel::constant(SimTime::millis(1)));
  net.add_link(proxy, up1, LatencyModel::constant(SimTime::millis(1)));
  net.add_link(proxy, up2, LatencyModel::constant(SimTime::millis(1)));

  const auto make_auth = [&](simnet::NodeId node, const char* name) {
    auto server = std::make_unique<dns::AuthoritativeServer>(
        net, node, name, LatencyModel::constant(SimTime::micros(100)));
    dns::Zone& zone = server->add_zone(dns::DnsName::must_parse("rr.test"));
    zone.must_add(dns::make_a(dns::DnsName::must_parse("www.rr.test"),
                              Ipv4Address::must_parse("198.18.0.1"), 30));
    return server;
  };
  auto auth1 = make_auth(up1, "up1");
  auto auth2 = make_auth(up2, "up2");

  dns::PluginChainServer server(net, proxy, "proxy",
                                LatencyModel::constant(SimTime::micros(200)));
  dns::PluginChain& chain = server.add_default_view("default");
  auto forward = std::make_unique<dns::ForwardPlugin>(
      dns::DnsName::root(),
      std::vector<Endpoint>{
          {Ipv4Address::must_parse("10.0.0.3"), dns::kDnsPort},
          {Ipv4Address::must_parse("10.0.0.4"), dns::kDnsPort}},
      server.transport());
  forward->set_policy(dns::ForwardPolicy::kRoundRobin);
  chain.add(std::move(forward));

  dns::StubResolver stub(net, client,
                         Endpoint{Ipv4Address::must_parse("10.0.0.2"),
                                  dns::kDnsPort});
  for (int i = 0; i < 10; ++i) {
    stub.resolve(dns::DnsName::must_parse("www.rr.test"),
                 dns::RecordType::kA,
                 [](const dns::StubResult& result) {
                   EXPECT_TRUE(result.ok);
                 });
    sim.run();
  }
  EXPECT_EQ(auth1->stats().queries, 5u);
  EXPECT_EQ(auth2->stats().queries, 5u);
}

}  // namespace
}  // namespace mecdns
