// AR/VR latency budget: which DNS deployments leave room for sub-20 ms
// content access?
//
// The paper motivates MEC-CDN with "the sub 20 ms requirements of emerging
// workloads such as AR/VR ... and autonomous driving". This example runs an
// AR client fetching small scene assets (one DNS lookup + one fetch each,
// uncached names as CDN routers use tiny TTLs) across the six Figure 5
// deployments, on LTE and on 5G NR, and reports how many requests fit a
// 20 ms / 50 ms end-to-end budget.
#include <cstdio>

#include "core/fig5.h"

using namespace mecdns;

namespace {

struct BudgetReport {
  double mean_ms = 0;
  double p99_ms = 0;
  double within_20ms = 0;
  double within_50ms = 0;
};

BudgetReport run(core::Fig5Deployment deployment, bool use_5g) {
  core::Fig5Testbed::Config config;
  config.deployment = deployment;
  if (use_5g) config.access = ran::nr5g();
  core::Fig5Testbed testbed(config);

  util::SampleSet totals;
  int done = 0;
  const int requests = 40;
  for (int i = 0; i < requests; ++i) {
    const std::string path = "/segment" + std::string(4 - std::to_string(i % 16).size(), '0') +
                             std::to_string(i % 16);
    testbed.network().simulator().schedule_after(
        simnet::SimTime::millis(250.0 * (i + 1)), [&, path] {
          cdn::Url url;
          url.host = testbed.content_name();
          url.path = path;
          testbed.ue().resolve_and_fetch(
              url, [&](const ran::UserEquipment::FetchOutcome& outcome) {
                ++done;
                if (outcome.ok) totals.add(outcome.total.to_millis());
              });
        });
  }
  testbed.network().simulator().run();

  BudgetReport report;
  report.mean_ms = totals.mean();
  report.p99_ms = totals.percentile(99);
  int in20 = 0;
  int in50 = 0;
  for (const double v : totals.values()) {
    if (v <= 20.0) ++in20;
    if (v <= 50.0) ++in50;
  }
  report.within_20ms = totals.empty() ? 0 : 100.0 * in20 / totals.size();
  report.within_50ms = totals.empty() ? 0 : 100.0 * in50 / totals.size();
  return report;
}

}  // namespace

int main() {
  std::printf(
      "=== AR/VR asset fetch (DNS + GET) against a 20 ms budget ===\n\n");
  for (const bool use_5g : {false, true}) {
    std::printf("--- access network: %s ---\n", use_5g ? "5G NR" : "4G LTE");
    std::printf("%-24s %10s %10s %8s %8s\n", "deployment", "mean(ms)",
                "p99(ms)", "<=20ms", "<=50ms");
    for (const auto deployment : core::all_fig5_deployments()) {
      const BudgetReport report = run(deployment, use_5g);
      std::printf("%-24s %10.1f %10.1f %7.0f%% %7.0f%%\n",
                  core::to_string(deployment).c_str(), report.mean_ms,
                  report.p99_ms, report.within_20ms, report.within_50ms);
    }
    std::printf("\n");
  }
  std::printf(
      "reading: on LTE no deployment meets 20 ms (the air interface alone "
      "is ~20 ms RTT), and only\nthe MEC deployments meet 50 ms; on 5G the "
      "MEC-CDN deployment fits the whole DNS+fetch inside\n20 ms while every "
      "non-MEC deployment still blows the budget on resolver distance "
      "alone.\n");
  return 0;
}
