// Mobile handoff: a UE drives from cell A to cell B; the handoff re-targets
// its DNS to the new cell's MEC L-DNS (§3 P1), keeping resolution and
// content on the local site. Compare with the sticky case by running with
// MECDNS_STICKY=1 in the environment.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/mec_cdn.h"
#include "ran/handoff.h"
#include "ran/profiles.h"
#include "ran/segment.h"
#include "ran/ue.h"

using namespace mecdns;

namespace {

struct Site {
  std::unique_ptr<ran::RanSegment> segment;
  std::unique_ptr<core::MecCdnSite> mec;
};

Site make_site(simnet::Network& net, simnet::NodeId backbone,
               const std::string& name, const std::string& prefix,
               const std::string& pgw_ip) {
  Site site;
  ran::RanSegment::Config rc;
  rc.name = name;
  rc.enb_addr = simnet::Ipv4Address::must_parse(prefix + ".0.1");
  rc.sgw_addr = simnet::Ipv4Address::must_parse(prefix + ".0.2");
  rc.pgw_addr = simnet::Ipv4Address::must_parse(pgw_ip);
  rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
  rc.access = ran::lte();
  site.segment = std::make_unique<ran::RanSegment>(net, rc);
  net.add_link(site.segment->pgw(), backbone, ran::wan_link(4.0));

  core::MecCdnSite::Config sc;
  sc.orchestrator.cluster.name = name + "-mec";
  sc.orchestrator.cluster.node_cidr =
      simnet::Cidr::must_parse(prefix + ".64.0/24");
  sc.orchestrator.cluster.service_cidr =
      simnet::Cidr::must_parse(prefix + ".128.0/20");
  sc.answer_ttl = 0;
  site.mec = std::make_unique<core::MecCdnSite>(net, sc);
  net.add_link(site.segment->pgw(), site.mec->orchestrator().cluster().gateway(),
               simnet::LatencyModel::constant(simnet::SimTime::millis(0.5)));
  return site;
}

}  // namespace

int main() {
  const bool sticky = std::getenv("MECDNS_STICKY") != nullptr;
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(404));
  const simnet::NodeId backbone =
      net.add_node("backbone", simnet::Ipv4Address::must_parse("192.0.2.1"));

  Site cell_a = make_site(net, backbone, "cell-a", "10.101", "203.0.113.1");
  Site cell_b = make_site(net, backbone, "cell-b", "10.102", "203.0.114.1");
  net.add_link(cell_a.segment->pgw(), cell_b.segment->pgw(),
               ran::wan_link(8.0));  // inter-site backhaul

  cdn::ContentCatalog catalog;
  catalog.add_series(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
                     "segment", 8, 1 << 20);
  cell_a.mec->add_delivery_service("demo1", catalog);
  cell_b.mec->add_delivery_service("demo1", catalog);

  ran::UserEquipment ue(net, *cell_a.segment, "car-ue",
                        simnet::Ipv4Address::must_parse("10.45.0.2"),
                        cell_a.mec->ldns_endpoint());
  const simnet::LinkId link_b =
      net.add_link(ue.node(), cell_b.segment->enb(), ran::lte().uplink,
                   ran::lte().downlink);
  net.set_link_up(link_b, false);

  ran::HandoffManager handoff(net, ue);
  handoff.add_cell({"cell-a", cell_a.segment.get(),
                    cell_a.segment->ue_link(ue.node()),
                    cell_a.mec->ldns_endpoint()});
  handoff.add_cell({"cell-b", cell_b.segment.get(), link_b,
                    cell_b.mec->ldns_endpoint()});
  handoff.attach(0);

  std::printf("mode: %s (set MECDNS_STICKY=1 for the no-retarget case)\n\n",
              sticky ? "sticky L-DNS" : "re-target DNS on handoff");
  std::printf("%8s %-10s %12s %-22s\n", "t(s)", "cell", "latency(ms)",
              "served by");

  // Drive: 10 fetches, handoff at t=5s.
  for (int i = 0; i < 10; ++i) {
    const auto at = simnet::SimTime::seconds(1.0 * (i + 1));
    sim.schedule_at(at, [&, i, at] {
      if (i == 5) {
        handoff.attach(1, /*retarget_dns=*/!sticky);
        std::printf("%8.1f  --- handoff to cell-b%s ---\n",
                    at.to_seconds(),
                    sticky ? " (DNS still points at cell-a)" : "");
      }
      cdn::Url url;
      url.host = dns::DnsName::must_parse("video.demo1.mycdn.ciab.test");
      url.path = "/segment000" + std::to_string(i % 8);
      ue.resolve_and_fetch(
          url, [&, at](const ran::UserEquipment::FetchOutcome& outcome) {
            const char* where = "?";
            const auto is_site = [&](core::MecCdnSite& site) {
              for (std::size_t c = 0; c < site.site_config().edge_caches; ++c) {
                if (site.cache_address(c) == outcome.server) return true;
              }
              return false;
            };
            if (is_site(*cell_a.mec)) where = "cell-a edge cache";
            if (is_site(*cell_b.mec)) where = "cell-b edge cache";
            std::printf("%8.1f %-10s %12.1f %-22s\n", at.to_seconds(),
                        handoff.active_cell() == 0 ? "cell-a" : "cell-b",
                        outcome.total.to_millis(), where);
          });
    });
  }
  sim.run();

  std::printf("\nreading: with re-targeting, latency stays flat and content "
              "is always local; sticky mode\npays the inter-site backhaul "
              "after the handoff and keeps hitting the old site's caches.\n");
  return 0;
}
