// Quickstart: build a MEC-CDN site behind an LTE RAN, resolve a CDN domain
// at the first hop, and fetch the content from the edge cache.
//
//   $ ./build/examples/quickstart
//
// This walks the public API end to end:
//   1. a simulated network + LTE RAN segment (eNB, S-GW, NAT'ing P-GW)
//   2. a MecCdnSite: Kubernetes-like cluster with split-namespace CoreDNS
//      (the MEC L-DNS) and an in-cluster Traffic Router (the C-DNS)
//   3. a delivery service with content warmed onto the edge caches
//   4. a UE whose DNS target is the MEC L-DNS cluster IP
//   5. one resolve+fetch, with the latency breakdown printed.
#include <cstdio>

#include "core/mec_cdn.h"
#include "ran/profiles.h"
#include "ran/segment.h"
#include "ran/ue.h"
#include "util/log.h"

using namespace mecdns;

int main() {
  // Narrate what the components do, each line stamped with simulated time.
  util::set_log_level(util::LogLevel::kInfo);

  // --- 1. network + RAN ------------------------------------------------------
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(/*seed=*/2026));

  ran::RanSegment::Config ran_config;
  ran_config.name = "lte";
  ran_config.enb_addr = simnet::Ipv4Address::must_parse("10.100.0.1");
  ran_config.sgw_addr = simnet::Ipv4Address::must_parse("10.100.0.2");
  ran_config.pgw_addr = simnet::Ipv4Address::must_parse("203.0.113.1");
  ran_config.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
  ran_config.access = ran::lte();
  ran::RanSegment ran_segment(net, ran_config);

  // --- 2. the MEC-CDN site ----------------------------------------------------
  core::MecCdnSite::Config site_config;
  site_config.cdn_domain = dns::DnsName::must_parse("mycdn.ciab.test");
  site_config.answer_ttl = 0;  // per-query routing, like the paper's testbed
  core::MecCdnSite site(net, site_config);

  // Collocate the cluster with the P-GW (one short hop).
  net.add_link(ran_segment.pgw(), site.orchestrator().cluster().gateway(),
               simnet::LatencyModel::constant(simnet::SimTime::millis(0.5)));

  // --- 3. deploy a delivery service -------------------------------------------
  cdn::ContentCatalog catalog;
  catalog.add_series(dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
                     "segment", 16, 2 * 1024 * 1024);
  site.add_delivery_service("demo1", catalog);

  std::printf("MEC L-DNS cluster IP : %s\n",
              site.ldns_endpoint().to_string().c_str());
  std::printf("C-DNS cluster IP     : %s\n",
              site.cdns_endpoint().to_string().c_str());
  for (std::size_t i = 0; i < site.site_config().edge_caches; ++i) {
    std::printf("edge cache %zu         : %s\n", i,
                site.cache_address(i).to_string().c_str());
  }

  // --- 4. a UE attached to the cell, DNS switched to the MEC L-DNS ------------
  ran::UserEquipment ue(net, ran_segment, "ue",
                        simnet::Ipv4Address::must_parse("10.45.0.2"),
                        site.ldns_endpoint());

  // --- 5. resolve + fetch -------------------------------------------------------
  ue.resolve_and_fetch(
      cdn::Url::must_parse("video.demo1.mycdn.ciab.test/segment0000"),
      [&](const ran::UserEquipment::FetchOutcome& outcome) {
        if (!outcome.ok) {
          std::printf("FAILED: %s\n", outcome.error.c_str());
          return;
        }
        std::printf("\nfetched %s (%llu bytes) from %s (%s)\n",
                    outcome.response.url.to_string().c_str(),
                    static_cast<unsigned long long>(
                        outcome.response.size_bytes),
                    outcome.server.to_string().c_str(),
                    outcome.response.served_from_cache ? "edge cache hit"
                                                       : "edge miss");
        std::printf("  DNS lookup  : %6.2f ms (resolved at the first hop)\n",
                    outcome.dns_latency.to_millis());
        std::printf("  content get : %6.2f ms\n",
                    outcome.fetch_latency.to_millis());
        std::printf("  total       : %6.2f ms\n", outcome.total.to_millis());
      });
  sim.run();

  std::printf("\nnote: the UE only ever saw cluster IPs — no public IPs were "
              "dedicated to the CDN (the paper's IP-reuse property)\n");
  return 0;
}
