// Figure 1 walkthrough: the classic DNS->CDN access sequence, narrated.
//
// The paper's Figure 1 shows the five steps of a CDN access through
// today's DNS: (1) client queries its L-DNS, (2) L-DNS resolves through
// the hierarchy to the CDN's name server, (3) the CDN Router (C-DNS) picks
// a cache server, (4) the L-DNS answers the client, (5) the client fetches
// the content. This example builds that topology, taps every DNS server,
// and prints the steps as they happen — then contrasts it with the
// proposed MEC-CDN path (Figure 4) where steps 1-4 collapse into one hop.
#include <cstdio>
#include <memory>

#include "core/fig5.h"
#include "dns/server.h"

using namespace mecdns;

namespace {

/// Prints each DNS packet crossing a node, with direction and names.
void narrate_node(simnet::Network& net, simnet::NodeId node,
                  const char* label) {
  net.add_tap(node, [&net, label](const simnet::Packet& packet,
                                  simnet::SimTime at) {
    if (packet.dst.port != dns::kDnsPort &&
        packet.src.port != dns::kDnsPort) {
      return;
    }
    const auto decoded = dns::decode(packet.payload);
    if (!decoded.ok() || decoded.value().questions.empty()) return;
    const dns::Message& msg = decoded.value();
    std::printf("  %8.2f ms  %-14s %s %s", at.to_millis(), label,
                msg.header.qr ? "<-" : "->",
                msg.question().name.to_string().c_str());
    if (msg.header.qr) {
      if (const auto addr = msg.first_a(); addr.has_value()) {
        std::printf("  = %s", addr->to_string().c_str());
      } else if (!msg.answers.empty() &&
                 msg.answers.front().type == dns::RecordType::kCname) {
        std::printf("  = CNAME");
      } else {
        std::printf("  (%s)", dns::to_string(msg.header.rcode).c_str());
      }
    }
    std::printf("\n");
  });
}

void run_one(core::Fig5Deployment deployment, const char* heading) {
  std::printf("%s\n", heading);
  core::Fig5Testbed::Config config;
  config.deployment = deployment;
  core::Fig5Testbed testbed(config);

  narrate_node(testbed.network(), testbed.ran().pgw(), "P-GW");
  // Tap every node that hosts a DNS server by walking known addresses.
  const auto tap_addr = [&](const char* label, const char* addr) {
    const auto node = testbed.network().find_node(
        simnet::Ipv4Address::must_parse(addr));
    if (node != simnet::kInvalidNode) {
      narrate_node(testbed.network(), node, label);
    }
  };
  tap_addr("dns-root", "198.41.0.4");
  tap_addr("wan C-DNS", "198.51.100.53");
  tap_addr("provider L-DNS", "10.201.0.53");
  tap_addr("MEC L-DNS", "10.96.0.10");
  tap_addr("MEC C-DNS", "10.96.0.53");

  bool printed = false;
  testbed.ue().resolve_and_fetch(
      cdn::Url::must_parse("video.demo1.mycdn.ciab.test/segment0000"),
      [&](const ran::UserEquipment::FetchOutcome& outcome) {
        printed = true;
        std::printf("  => DNS %.1f ms + fetch %.1f ms from %s\n\n",
                    outcome.dns_latency.to_millis(),
                    outcome.fetch_latency.to_millis(),
                    outcome.server.to_string().c_str());
      });
  testbed.network().simulator().run();
  if (!printed) std::printf("  (lookup failed)\n\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 1: today's path — hierarchical L-DNS far behind "
              "the core ===\n");
  run_one(core::Fig5Deployment::kProviderLdns,
          "steps 1-4 traverse the core network, the hierarchy and the WAN "
          "C-DNS:");

  std::printf("=== Figure 4: the proposal — split-namespace L-DNS + C-DNS "
              "in the MEC ===\n");
  run_one(core::Fig5Deployment::kMecLdnsMecCdns,
          "the whole resolution is contained at the first hop:");
  return 0;
}
