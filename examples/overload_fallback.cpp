// Overload fallback: the MEC DNS under a query flood.
//
// §3 P1's DoS-mitigation policy: the orchestrator monitors ingress load to
// the MEC DNS and sheds to the provider's L-DNS above a threshold, so MEC
// DNS "provides best effort guarantees" — degradation, not unavailability.
// The UE multicasts to both servers (the paper's workaround), so shed
// queries transparently resolve via the provider.
#include <cstdio>

#include "core/fig5.h"

using namespace mecdns;

int main() {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.provider_fallback = true;
  config.overload_threshold_qps = 30;
  core::Fig5Testbed testbed(config);
  testbed.ue().resolver().set_secondary(testbed.provider_endpoint());

  std::printf("MEC DNS overload guard: threshold %zu qps; UE multicasts to "
              "MEC DNS + provider L-DNS\n\n",
              config.overload_threshold_qps);
  std::printf("%10s %10s %12s %12s %10s\n", "phase", "load", "mean(ms)",
              "MEC answers", "failures");

  struct Phase {
    const char* label;
    double qps;
  };
  for (const Phase phase : {Phase{"calm", 10}, Phase{"flood", 200},
                            Phase{"calm again", 10}}) {
    const auto spacing = simnet::SimTime::millis(1000.0 / phase.qps);
    const core::SeriesResult result =
        testbed.measure_name(testbed.content_name(), 120, spacing, 0);
    const double mec_share = result.answer_share(
        [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
    std::printf("%10s %8.0f/s %12.1f %11.0f%% %10zu\n", phase.label,
                phase.qps, result.totals().mean(), 100.0 * mec_share,
                result.failures());
  }

  const auto* guard = testbed.site().overload_guard();
  std::printf("\nguard counters: admitted=%llu shed=%llu\n",
              static_cast<unsigned long long>(guard->admitted()),
              static_cast<unsigned long long>(guard->shed()));
  std::printf(
      "reading: during the flood the guard sheds above-threshold queries "
      "(REFUSED); the multicast\nstub falls back to the provider path — "
      "slower answers from the cloud tier, but zero failures.\nWhen the "
      "flood ends, answers return to the MEC caches.\n");
  return 0;
}
