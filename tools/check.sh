#!/usr/bin/env bash
# Full pre-merge gauntlet:
#   1. Debug build with ASan+UBSan, all tests under the sanitizers.
#   2. Fault-matrix smoke: every chaos scenario once, fixed seed, under the
#      sanitizers (bench_fault_availability drives the whole failure-handling
#      stack end to end).
#   3. Plain Release build (what the benches/figures run as), all tests.
#   4. Observability gate: fig2 with trace/metrics/timeseries outputs,
#      mecdns_report over each artifact, and a self-diff of two identical
#      runs (any nonzero diff means the bench lost determinism).
#   5. TSan parallel-campaign gate: fig5 at --workers 1 and --workers 4
#      under ThreadSanitizer, outputs compared byte for byte — the parallel
#      runner's determinism contract, and its data-race freedom, in one
#      stage.
#   6. Perf gate: bench_micro emits BENCH_micro.json and bench_throughput
#      drives the load generator against two fig5 deployments; the
#      deterministic artifact is byte-compared across worker counts,
#      self-diffed (must be clean), and an injected allocs/query regression
#      must trip `mecdns_report --diff` nonzero.
#   7. Mobility-churn robustness gate: bench_mobility_churn runs handoff
#      storms / flash crowds fragile-vs-robust, byte-compares the artifact
#      across worker counts, requires --gate to pass (robust meets the SLO
#      everywhere, fragile exhausts its budget somewhere), and requires the
#      --misconfigure run — robust machinery with the client fallback
#      forgotten — to exit nonzero.
#   8. Incident-forensics gate: the fault matrix emits BENCH_incidents.json
#      (flight-recorder journal correlated into graded incidents),
#      byte-compared across worker counts and rendered by
#      `mecdns_report --incidents`. Every robust incident must grade a
#      finite MTTD and a bounded MTTR (the awk gate owns finiteness; --diff
#      owns drift, so an injected MTTR regression must trip it nonzero).
#   9. Livewire smoke: the epoll/UDP runtime for real. mecdns_livewire
#      serves the MEC zone on an ephemeral 127.0.0.1 port (ASan build), the
#      probe client resolves a name over the real wire and checks the A
#      record, and the server's teardown must report sockets_leaked=0.
# Usage: tools/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run() { echo "+ $*"; "$@"; }

echo "=== 1/9: ASan/UBSan build + tests (build-asan/) ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
run cmake --build build-asan -j "$jobs"
run ctest --test-dir build-asan --output-on-failure -j "$jobs" --timeout 120

echo "=== 2/9: fault-matrix smoke (ASan/UBSan) ==="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for scenario in mec-ldns-crash edge-cache-partition wan-loss-burst \
                cdns-brownout cache-wipe; do
  run ./build-asan/bench/bench_fault_availability \
      --scenario "$scenario" --requests 40 --spacing-ms 500 \
      --fault-start-ms 8000 --fault-end-ms 14000 --seed 42 \
      --json-out "$smoke_dir/fault_$scenario.json"
done

echo "=== 3/9: Release build + tests (build/) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j "$jobs"
run ctest --test-dir build --output-on-failure -j "$jobs" --timeout 120

echo "=== 4/9: observability pipeline + determinism self-diff ==="
obs_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$obs_dir"' EXIT
run ./build/bench/bench_fig2_lookup_latency \
    --json-out "$obs_dir/fig2_a.json" \
    --trace-out "$obs_dir/trace.json" \
    --metrics-out "$obs_dir/metrics.json" \
    --timeseries-out "$obs_dir/series.json"
# fig2 runs one simulation per (site, network) cell, so trace/timeseries
# files carry the cell slug; spot-check the first cell's artifacts.
run ./build/tools/mecdns_report \
    --trace "$obs_dir/trace.airbnb.wired-campus.json" \
    --metrics "$obs_dir/metrics.json" \
    --timeseries "$obs_dir/series.airbnb.wired-campus.json"
run ./build/bench/bench_fig2_lookup_latency --json-out "$obs_dir/fig2_b.json"
run ./build/tools/mecdns_report \
    --diff "$obs_dir/fig2_a.json" --against "$obs_dir/fig2_b.json"

echo "=== 5/9: TSan parallel-campaign determinism gate (build-tsan/) ==="
run cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
run cmake --build build-tsan -j "$jobs" \
    --target bench_fig5_deployments core_parallel_test mecdns_report
run ./build-tsan/tests/core_parallel_test
par_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$obs_dir" "$par_dir"' EXIT
run ./build-tsan/bench/bench_fig5_deployments --workers 1 \
    --json-out "$par_dir/fig5_serial.json" \
    --metrics-out "$par_dir/metrics_serial.json"
run ./build-tsan/bench/bench_fig5_deployments --workers 4 \
    --json-out "$par_dir/fig5_parallel.json" \
    --metrics-out "$par_dir/metrics_parallel.json"
run ./build-tsan/tools/mecdns_report \
    --diff-bytes "$par_dir/fig5_serial.json" \
    --against "$par_dir/fig5_parallel.json"
run ./build-tsan/tools/mecdns_report \
    --diff-bytes "$par_dir/metrics_serial.json" \
    --against "$par_dir/metrics_parallel.json"

echo "=== 6/9: perf gate (microbench artifact + throughput regression) ==="
perf_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$obs_dir" "$par_dir" "$perf_dir"' EXIT
# Microbenchmarks as a pipeline artifact (the JSON is a reference record,
# not a gate — wall time is machine-dependent).
run ./build/bench/bench_micro \
    --benchmark_out="$perf_dir/BENCH_micro.json" \
    --benchmark_out_format=json
run ./build/tools/mecdns_report --bench "$perf_dir/BENCH_micro.json"
# Load-generator throughput: small population here (check.sh is a
# pre-merge loop; the full 100k-UE run is one flag away). Worker-count
# independence is part of the determinism contract, so compare bytes.
# --journal arms the flight recorder on the hot path, so the allocation
# ceilings below are verified with journaling enabled (it must stay free).
tp="./build/bench/bench_throughput --ues 20000 --rate-hz 0.05 --duration-s 10 \
    --journal"
run $tp --workers 1 --json-out "$perf_dir/tp_serial.json" \
    --metrics-out "$perf_dir/tp_metrics_serial.json"
run $tp --workers 4 --json-out "$perf_dir/tp_parallel.json" \
    --metrics-out "$perf_dir/tp_metrics_parallel.json"
run ./build/tools/mecdns_report \
    --diff-bytes "$perf_dir/tp_serial.json" \
    --against "$perf_dir/tp_parallel.json"
run ./build/tools/mecdns_report \
    --diff-bytes "$perf_dir/tp_metrics_serial.json" \
    --against "$perf_dir/tp_metrics_parallel.json"
run ./build/tools/mecdns_report --bench "$perf_dir/tp_serial.json"
run ./build/tools/mecdns_report \
    --diff "$perf_dir/tp_serial.json" --against "$perf_dir/tp_parallel.json"
# Absolute allocation ceilings (the arena/pool/borrowed-send baseline is
# ~30 allocs and ~6.3 KB per query). The diffs above only catch drift
# between the two runs of this script, so pin hard numbers: the gate trips
# well below half the pre-arena cost (274 allocs, ~21 KB per query).
awk 'BEGIN { RS = "," }
  /"allocs_per_query"/ { split($0, kv, ":"); v = kv[2] + 0
      if (v > 100) { printf "allocs_per_query %s exceeds ceiling 100\n", v; bad = 1 } }
  /"alloc_bytes_per_query"/ { split($0, kv, ":"); v = kv[2] + 0
      if (v > 10000) { printf "alloc_bytes_per_query %s exceeds ceiling 10000\n", v; bad = 1 } }
  END { if (bad) exit 1; print "+ allocation ceilings respected" }' \
  "$perf_dir/tp_serial.json"
# The gate must actually gate: inject a 10x allocs/query regression and
# demand a nonzero exit.
sed -E 's/"allocs_per_query": ([0-9.]+)/"allocs_per_query": 999999/' \
    "$perf_dir/tp_serial.json" > "$perf_dir/tp_regressed.json"
if ./build/tools/mecdns_report --diff "$perf_dir/tp_serial.json" \
    --against "$perf_dir/tp_regressed.json" > /dev/null; then
  echo "error: injected allocs_per_query regression was not detected" >&2
  exit 1
fi
echo "+ injected regression correctly detected"

echo "=== 7/9: mobility-churn robustness gate ==="
mob_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$obs_dir" "$par_dir" "$perf_dir" "$mob_dir"' EXIT
# Downsized population, same overload physics: the flash crowd still
# concentrates ~960 qps on the hot cell's 1-worker (~909 qps) L-DNS.
mob="./build/bench/bench_mobility_churn --ues 150 --rate-hz 8 \
    --duration-s 12 --event-start-s 3 --event-end-s 8 --seed 42"
run $mob --workers 1 --json-out "$mob_dir/mobility_serial.json" --gate
run $mob --workers 4 --json-out "$mob_dir/mobility_parallel.json" --gate
run ./build/tools/mecdns_report \
    --diff-bytes "$mob_dir/mobility_serial.json" \
    --against "$mob_dir/mobility_parallel.json"
# The gate must actually gate: a mis-configured robust deployment (site
# machinery on, client fallback forgotten) reports under the robust label
# and must be rejected.
if $mob --workers 4 --json-out "$mob_dir/mobility_broken.json" \
    --gate --misconfigure > /dev/null; then
  echo "error: mis-configured robust run was not rejected by --gate" >&2
  exit 1
fi
echo "+ mis-configured robust run correctly rejected"

echo "=== 8/9: incident-forensics gate ==="
inc_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$obs_dir" "$par_dir" "$perf_dir" "$mob_dir" \
    "$inc_dir"' EXIT
fault="./build/bench/bench_fault_availability --requests 40 --spacing-ms 500 \
    --fault-start-ms 8000 --fault-end-ms 14000 --seed 42"
run $fault --workers 1 --json-out "" \
    --incidents-out "$inc_dir/inc_serial.json"
run $fault --workers 4 --json-out "" \
    --incidents-out "$inc_dir/inc_parallel.json"
run ./build/tools/mecdns_report \
    --diff-bytes "$inc_dir/inc_serial.json" \
    --against "$inc_dir/inc_parallel.json"
run ./build/tools/mecdns_report --incidents "$inc_dir/inc_serial.json"
run ./build/tools/mecdns_report \
    --diff "$inc_dir/inc_serial.json" --against "$inc_dir/inc_parallel.json"
# Finiteness gate (the --diff above only catches drift): every scenario
# must correlate at least one incident from its injected fault, nothing may
# fall off the journal ring, and every robust incident must grade a finite
# MTTD (the control plane visibly reacted) and a bounded MTTR. -1 means
# "broke and never detected/recovered" — exactly what must not ship.
awk '
  /"mode": "robust"/ {
    match($0, /"scenario": "[^"]+"/); row = substr($0, RSTART + 13, RLENGTH - 14)
    match($0, /"mttd_ms": -?[0-9.]+/); mttd = substr($0, RSTART + 11, RLENGTH - 11) + 0
    match($0, /"mttr_ms": -?[0-9.]+/); mttr = substr($0, RSTART + 11, RLENGTH - 11) + 0
    if (mttd < 0) { printf "%s: robust MTTD %s (undetected)\n", row, mttd; bad = 1 }
    if (mttr < 0 || mttr > 4000) { printf "%s: robust MTTR %s out of [0, 4000]\n", row, mttr; bad = 1 }
  }
  /"incidents": 0/ { printf "scenario row with zero incidents: %s\n", $0; bad = 1 }
  /"journal_dropped": [1-9]/ { printf "journal overflow: %s\n", $0; bad = 1 }
  END { if (bad) exit 1; print "+ incident grades within bounds" }' \
  "$inc_dir/inc_serial.json"
# The recovery-time gate must actually gate: inject a huge MTTR and demand
# a nonzero exit from --diff.
sed -E 's/"mttr_ms": [0-9.]+/"mttr_ms": 999999/' \
    "$inc_dir/inc_serial.json" > "$inc_dir/inc_regressed.json"
if ./build/tools/mecdns_report --diff "$inc_dir/inc_serial.json" \
    --against "$inc_dir/inc_regressed.json" > /dev/null; then
  echo "error: injected mttr_ms regression was not detected" >&2
  exit 1
fi
echo "+ injected MTTR regression correctly detected"
# Mobility churn feeds the same journal/correlator: byte-stable across
# workers and at least one incident per churn scenario.
run $mob --workers 1 --json-out "" \
    --incidents-out "$inc_dir/mob_inc_serial.json"
run $mob --workers 4 --json-out "" \
    --incidents-out "$inc_dir/mob_inc_parallel.json"
run ./build/tools/mecdns_report \
    --diff-bytes "$inc_dir/mob_inc_serial.json" \
    --against "$inc_dir/mob_inc_parallel.json"
run ./build/tools/mecdns_report --incidents "$inc_dir/mob_inc_serial.json"
awk '
  /"incidents": 0/ { printf "churn row with zero incidents: %s\n", $0; bad = 1 }
  END { if (bad) exit 1; print "+ every churn scenario correlated an incident" }' \
  "$inc_dir/mob_inc_serial.json"

echo "=== 9/9: livewire smoke (real UDP over loopback, ASan) ==="
live_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$obs_dir" "$par_dir" "$perf_dir" "$mob_dir" \
    "$inc_dir" "$live_dir"' EXIT
run cmake --build build-asan -j "$jobs" --target mecdns_livewire
./build-asan/tools/mecdns_livewire --port 0 --duration-s 30 \
    --records video.mec.test=192.0.2.7 > "$live_dir/serve.log" 2>&1 &
live_pid=$!
for _ in $(seq 1 100); do
  grep -q LISTENING "$live_dir/serve.log" 2>/dev/null && break
  sleep 0.1
done
live_port="$(head -1 "$live_dir/serve.log" | grep -oE '[0-9]+$')"
echo "+ livewire server on 127.0.0.1:$live_port"
run ./build-asan/tools/mecdns_livewire --probe video.mec.test \
    --server "127.0.0.1:$live_port" --expect-a 192.0.2.7
# SIGINT must shut the loop down cleanly; the exit status is the server's
# own socket-leak verdict (nonzero if any fd survived teardown).
kill -INT "$live_pid"
wait "$live_pid"
cat "$live_dir/serve.log"
grep -q '^sockets_leaked=0$' "$live_dir/serve.log" || {
  echo "error: livewire teardown leaked sockets" >&2; exit 1; }

echo "All checks passed."
