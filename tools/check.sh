#!/usr/bin/env bash
# Full pre-merge gauntlet:
#   1. Debug build with ASan+UBSan, all tests under the sanitizers.
#   2. Plain Release build (what the benches/figures run as), all tests.
# Usage: tools/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run() { echo "+ $*"; "$@"; }

echo "=== 1/2: ASan/UBSan build + tests (build-asan/) ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
run cmake --build build-asan -j "$jobs"
run ctest --test-dir build-asan --output-on-failure -j "$jobs"

echo "=== 2/2: Release build + tests (build/) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j "$jobs"
run ctest --test-dir build --output-on-failure -j "$jobs"

echo "All checks passed."
