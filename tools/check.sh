#!/usr/bin/env bash
# Full pre-merge gauntlet:
#   1. Debug build with ASan+UBSan, all tests under the sanitizers.
#   2. Fault-matrix smoke: every chaos scenario once, fixed seed, under the
#      sanitizers (bench_fault_availability drives the whole failure-handling
#      stack end to end).
#   3. Plain Release build (what the benches/figures run as), all tests.
# Usage: tools/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run() { echo "+ $*"; "$@"; }

echo "=== 1/3: ASan/UBSan build + tests (build-asan/) ==="
run cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
run cmake --build build-asan -j "$jobs"
run ctest --test-dir build-asan --output-on-failure -j "$jobs" --timeout 120

echo "=== 2/3: fault-matrix smoke (ASan/UBSan) ==="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for scenario in mec-ldns-crash edge-cache-partition wan-loss-burst \
                cdns-brownout cache-wipe; do
  run ./build-asan/bench/bench_fault_availability \
      --scenario "$scenario" --requests 40 --spacing-ms 500 \
      --fault-start-ms 8000 --fault-end-ms 14000 --seed 42 \
      --json-out "$smoke_dir/fault_$scenario.json"
done

echo "=== 3/3: Release build + tests (build/) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j "$jobs"
run ctest --test-dir build --output-on-failure -j "$jobs" --timeout 120

echo "All checks passed."
