// mecdns_testbed — run the paper's experiments from the command line.
//
//   mecdns_testbed --experiment fig5 --deployment mec-mec --queries 50
//   mecdns_testbed --experiment fig5 --deployment google --csv
//   mecdns_testbed --experiment study --site 0 --network cellular-mobile
//   mecdns_testbed --experiment ecs --deployment mec-lan
//
// Prints a human-readable summary, or CSV rows (--csv) for plotting.
#include <cstdio>
#include <string>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "core/study.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/args.h"

using namespace mecdns;

namespace {

/// Writes the collected trace/metrics/timeseries files named by
/// --trace-out, --metrics-out and --timeseries-out (any may be empty =
/// disabled). Returns false if any requested file could not be written —
/// silently dropping telemetry a CI gate depends on is worse than failing.
bool write_observability(const util::ArgParser& args,
                         const obs::TraceSink& trace,
                         const obs::Registry& metrics,
                         const obs::TimeSeries* timeseries) {
  bool ok = true;
  const std::string trace_out = args.get_string("trace-out");
  if (!trace_out.empty()) {
    if (trace.write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "wrote %zu spans to %s (load in chrome://tracing "
                   "or ui.perfetto.dev)\n", trace.size(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write trace to %s\n",
                   trace_out.c_str());
      ok = false;
    }
  }
  const std::string metrics_out = args.get_string("metrics-out");
  if (!metrics_out.empty()) {
    if (metrics.write_json(metrics_out)) {
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   metrics_out.c_str());
      ok = false;
    }
  }
  const std::string series_out = args.get_string("timeseries-out");
  if (!series_out.empty() && timeseries != nullptr) {
    if (timeseries->write_json(series_out)) {
      std::fprintf(stderr, "wrote %zu windows to %s\n",
                   timeseries->windows().size(), series_out.c_str());
    } else {
      std::fprintf(stderr, "error: failed to write timeseries to %s\n",
                   series_out.c_str());
      ok = false;
    }
  }
  return ok;
}

/// Applies the --trace-sample* flags to the sink. A rate of 1.0 leaves
/// sampling off entirely so the span stream is bit-identical to a plain
/// unsampled run.
void configure_sampling(const util::ArgParser& args, obs::TraceSink& trace) {
  const double rate = args.get_double("trace-sample");
  if (rate >= 1.0) return;
  obs::TraceSink::SamplingConfig sampling;
  sampling.head_rate = rate;
  sampling.seed = static_cast<std::uint64_t>(args.get_int("seed")) ^
                  static_cast<std::uint64_t>(args.get_int("trace-sample-seed"));
  sampling.keep_slower_than =
      simnet::SimTime::millis(args.get_double("trace-slow-keep-ms"));
  trace.set_sampling(sampling);
}

/// Filename-safe deployment slug (the same names --deployment accepts).
std::string deployment_slug(core::Fig5Deployment deployment) {
  switch (deployment) {
    case core::Fig5Deployment::kMecLdnsMecCdns: return "mec-mec";
    case core::Fig5Deployment::kMecLdnsLanCdns: return "mec-lan";
    case core::Fig5Deployment::kMecLdnsWanCdns: return "mec-wan";
    case core::Fig5Deployment::kProviderLdns: return "provider";
    case core::Fig5Deployment::kGoogleDns: return "google";
    case core::Fig5Deployment::kCloudflareDns: return "cloudflare";
  }
  return "unknown";
}

/// "trace.json" + "mec-mec" -> "trace.mec-mec.json".
std::string with_slug(const std::string& path, const std::string& name) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

/// --experiment fig5 --deployment all: the whole six-deployment sweep as a
/// parallel campaign — one private testbed per deployment, seeded
/// split_mix64(seed ^ deployment_index), output merged in deployment order
/// (byte-identical for any --workers value).
int run_fig5_sweep(const util::ArgParser& args) {
  struct JobOutput {
    std::string summary_lines;  ///< the per-deployment stdout block
    std::string trace_json;
    std::string timeseries_json;
    obs::Registry metrics;
  };
  const auto& deployments = core::all_fig5_deployments();
  const bool want_trace = !args.get_string("trace-out").empty();
  const bool want_metrics = !args.get_string("metrics-out").empty();
  const bool want_series = !args.get_string("timeseries-out").empty();
  const bool csv = args.get_bool("csv");
  const auto queries = static_cast<std::size_t>(args.get_int("queries"));
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<JobOutput>(
      deployments.size(), [&](std::size_t index) {
        core::Fig5Testbed::Config config;
        config.deployment = deployments[index];
        config.seed = core::job_seed(campaign_seed, index);
        config.enable_ecs = args.get_bool("ecs");
        core::Fig5Testbed testbed(config);
        obs::TraceSink trace(testbed.network().simulator());
        obs::Registry metrics;
        obs::TimeSeries timeseries(
            testbed.simulator(),
            simnet::SimTime::millis(
                args.get_double("timeseries-window-ms")));
        if (want_trace) configure_sampling(args, trace);
        testbed.set_observers(want_trace ? &trace : nullptr,
                              want_metrics ? &metrics : nullptr);
        testbed.set_timeseries(want_series ? &timeseries : nullptr);
        const core::SeriesResult result = testbed.measure(queries);

        JobOutput out;
        if (want_trace) out.trace_json = trace.to_chrome_trace();
        if (want_series) out.timeseries_json = timeseries.to_json();
        if (want_metrics) {
          testbed.export_metrics(metrics);
          out.metrics = std::move(metrics);
        }
        char buf[256];
        if (csv) {
          for (std::size_t i = 0; i < result.samples.size(); ++i) {
            const auto& sample = result.samples[i];
            std::snprintf(buf, sizeof(buf), "%s,%zu,%.3f,%.3f,%.3f,%s\n",
                          deployment_slug(deployments[index]).c_str(), i,
                          sample.total_ms, sample.wireless_ms,
                          sample.beyond_pgw_ms,
                          sample.address.to_string().c_str());
            out.summary_lines += buf;
          }
          return out;
        }
        const util::Summary summary = result.totals().summarize();
        std::snprintf(buf, sizeof(buf),
                      "%s: mean %.1f ms (wireless %.1f + dns %.1f), min "
                      "%.1f, max %.1f, failures %zu\n",
                      core::to_string(config.deployment).c_str(),
                      summary.mean, result.wireless().mean(),
                      result.beyond_pgw().mean(), summary.min, summary.max,
                      result.failures());
        out.summary_lines += buf;
        const double mec_share = result.answer_share(
            [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
        std::snprintf(buf, sizeof(buf), "answers from MEC caches: %.0f%%\n",
                      100.0 * mec_share);
        out.summary_lines += buf;
        return out;
      });

  if (csv) {
    std::printf("deployment,query,total_ms,wireless_ms,beyond_pgw_ms,answer\n");
  }
  obs::Registry combined;
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    const std::string slug = deployment_slug(deployments[index]);
    if (!outcomes[index].ok) {
      std::fprintf(stderr, "error: deployment %s failed: %s\n", slug.c_str(),
                   outcomes[index].error.c_str());
      return 1;
    }
    const JobOutput& out = outcomes[index].value;
    if (want_trace) {
      const std::string path = with_slug(args.get_string("trace-out"), slug);
      if (!obs::write_text_file(path, out.trace_json)) {
        std::fprintf(stderr, "error: failed to write trace to %s\n",
                     path.c_str());
        return 1;
      }
    }
    if (want_series) {
      const std::string path =
          with_slug(args.get_string("timeseries-out"), slug);
      if (!obs::write_text_file(path, out.timeseries_json)) {
        std::fprintf(stderr, "error: failed to write timeseries to %s\n",
                     path.c_str());
        return 1;
      }
    }
    if (want_metrics) {
      // One combined file, names prefixed per deployment (the six runs
      // share metric names).
      for (const auto& [key, value] : out.metrics.counters()) {
        combined.add(slug + "." + key, value);
      }
      for (const auto& [key, value] : out.metrics.gauges()) {
        combined.set_gauge(slug + "." + key, value);
      }
      for (const auto& [key, histogram] : out.metrics.histograms()) {
        combined.histogram(slug + "." + key).merge(histogram);
      }
    }
    std::fputs(out.summary_lines.c_str(), stdout);
  }
  if (want_metrics && !combined.write_json(args.get_string("metrics-out"))) {
    std::fprintf(stderr, "error: failed to write metrics to %s\n",
                 args.get_string("metrics-out").c_str());
    return 1;
  }
  return 0;
}

util::Result<core::Fig5Deployment> parse_deployment(const std::string& text) {
  if (text == "mec-mec") return core::Fig5Deployment::kMecLdnsMecCdns;
  if (text == "mec-lan") return core::Fig5Deployment::kMecLdnsLanCdns;
  if (text == "mec-wan") return core::Fig5Deployment::kMecLdnsWanCdns;
  if (text == "provider") return core::Fig5Deployment::kProviderLdns;
  if (text == "google") return core::Fig5Deployment::kGoogleDns;
  if (text == "cloudflare") return core::Fig5Deployment::kCloudflareDns;
  return util::Err("unknown deployment '" + text +
                   "' (mec-mec|mec-lan|mec-wan|provider|google|cloudflare)");
}

int run_fig5(const util::ArgParser& args) {
  if (args.get_string("deployment") == "all") return run_fig5_sweep(args);
  const auto deployment = parse_deployment(args.get_string("deployment"));
  if (!deployment.ok()) {
    std::fprintf(stderr, "%s\n", deployment.error().message.c_str());
    return 2;
  }
  core::Fig5Testbed::Config config;
  config.deployment = deployment.value();
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.enable_ecs = args.get_bool("ecs");
  core::Fig5Testbed testbed(config);
  obs::TraceSink trace(testbed.network().simulator());
  obs::Registry metrics;
  obs::TimeSeries timeseries(
      testbed.simulator(),
      simnet::SimTime::millis(args.get_double("timeseries-window-ms")));
  const bool want_trace = !args.get_string("trace-out").empty();
  const bool want_metrics = !args.get_string("metrics-out").empty();
  const bool want_series = !args.get_string("timeseries-out").empty();
  if (want_trace) configure_sampling(args, trace);
  testbed.set_observers(want_trace ? &trace : nullptr,
                        want_metrics ? &metrics : nullptr);
  testbed.set_timeseries(want_series ? &timeseries : nullptr);
  const core::SeriesResult result =
      testbed.measure(static_cast<std::size_t>(args.get_int("queries")));
  if (want_metrics) testbed.export_metrics(metrics);
  if (!write_observability(args, trace, metrics, &timeseries)) return 1;

  if (args.get_bool("csv")) {
    std::printf("deployment,query,total_ms,wireless_ms,beyond_pgw_ms,answer\n");
    for (std::size_t i = 0; i < result.samples.size(); ++i) {
      const auto& sample = result.samples[i];
      std::printf("%s,%zu,%.3f,%.3f,%.3f,%s\n",
                  args.get_string("deployment").c_str(), i, sample.total_ms,
                  sample.wireless_ms, sample.beyond_pgw_ms,
                  sample.address.to_string().c_str());
    }
    return 0;
  }
  const util::Summary summary = result.totals().summarize();
  std::printf("%s: mean %.1f ms (wireless %.1f + dns %.1f), min %.1f, max "
              "%.1f, failures %zu\n",
              core::to_string(config.deployment).c_str(), summary.mean,
              result.wireless().mean(), result.beyond_pgw().mean(),
              summary.min, summary.max, result.failures());
  const double mec_share = result.answer_share(
      [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
  std::printf("answers from MEC caches: %.0f%%\n", 100.0 * mec_share);
  return 0;
}

int run_study(const util::ArgParser& args) {
  core::MeasurementStudy::Config config;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.queries_per_cell = static_cast<std::size_t>(args.get_int("queries"));
  core::MeasurementStudy study(config);
  const auto site = static_cast<std::size_t>(args.get_int("site"));
  if (site >= workload::figure3_profiles().size()) {
    std::fprintf(stderr, "site index out of range (0-%zu)\n",
                 workload::figure3_profiles().size() - 1);
    return 2;
  }
  obs::TraceSink trace(study.network().simulator());
  obs::Registry metrics;
  obs::TimeSeries timeseries(
      study.network().simulator(),
      simnet::SimTime::millis(args.get_double("timeseries-window-ms")));
  const bool want_trace = !args.get_string("trace-out").empty();
  const bool want_metrics = !args.get_string("metrics-out").empty();
  const bool want_series = !args.get_string("timeseries-out").empty();
  if (want_trace) configure_sampling(args, trace);
  study.set_observers(want_trace ? &trace : nullptr,
                      want_metrics ? &metrics : nullptr);
  study.set_timeseries(want_series ? &timeseries : nullptr);
  const auto cell = study.run_cell(site, args.get_string("network"));
  if (!write_observability(args, trace, metrics, &timeseries)) return 1;

  if (args.get_bool("csv")) {
    std::printf("website,network,query,latency_ms\n");
    const auto& values = cell.latencies_ms.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("%s,%s,%zu,%.3f\n", cell.website.c_str(),
                  cell.network_class.c_str(), i, values[i]);
    }
    return 0;
  }
  std::printf("%s over %s: bar %.1f ms (8th-92nd pct), min %.1f, max %.1f\n",
              cell.website.c_str(), cell.network_class.c_str(),
              cell.trimmed.mean, cell.trimmed.min, cell.trimmed.max);
  for (const auto& key : cell.distribution.keys_by_count()) {
    std::printf("  %-40s %.0f%%\n", key.c_str(),
                100.0 * cell.distribution.share(key));
  }
  return 0;
}

int run_ecs(const util::ArgParser& args) {
  const auto deployment = parse_deployment(args.get_string("deployment"));
  if (!deployment.ok()) {
    std::fprintf(stderr, "%s\n", deployment.error().message.c_str());
    return 2;
  }
  const auto queries = static_cast<std::size_t>(args.get_int("queries"));
  double means[2];
  for (const bool ecs : {false, true}) {
    core::Fig5Testbed::Config config;
    config.deployment = deployment.value();
    config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    config.enable_ecs = ecs;
    core::Fig5Testbed testbed(config);
    means[ecs ? 1 : 0] = testbed.measure(queries).totals().mean();
  }
  std::printf("%s: no-ECS %.1f ms, ECS %.1f ms, ratio %.2fx\n",
              core::to_string(deployment.value()).c_str(), means[0], means[1],
              means[1] / means[0]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "mecdns_testbed: run the MEC-CDN paper's experiments from the CLI");
  args.add_string("experiment", "fig5", "fig5 | study | ecs");
  args.add_string("deployment", "mec-mec",
                  "fig5/ecs deployment: mec-mec|mec-lan|mec-wan|provider|"
                  "google|cloudflare, or 'all' (fig5) for the whole sweep");
  args.add_int("workers", 0,
               "parallel campaign workers for --deployment all "
               "(0 = hardware concurrency, 1 = serial); output is "
               "byte-identical for any value");
  args.add_int("queries", 50, "measured queries per series");
  args.add_int("seed", 42, "simulation seed");
  args.add_bool("ecs", false, "enable EDNS Client Subnet (fig5)");
  args.add_int("site", 0, "study: Table 1 site index (0-4)");
  args.add_string("network", "cellular-mobile",
                  "study: wired-campus | wifi-home | cellular-mobile");
  args.add_bool("csv", false, "emit per-query CSV instead of a summary");
  args.add_string("trace-out", "",
                  "write per-query spans as Chrome trace-event JSON "
                  "(chrome://tracing / Perfetto)");
  args.add_string("metrics-out", "",
                  "write counters/gauges/histograms as JSON");
  args.add_string("timeseries-out", "",
                  "write sim-time-windowed metrics (with chaos annotations) "
                  "as JSON");
  args.add_double("timeseries-window-ms", 500.0,
                  "sim-time window width for --timeseries-out");
  args.add_double("trace-sample", 1.0,
                  "head-sampling rate for root query spans (1.0 = keep all; "
                  "slow or failed lookups are always kept)");
  args.add_int("trace-sample-seed", 0,
               "extra seed XORed into the sampling hash");
  args.add_double("trace-slow-keep-ms", 20.0,
                  "tail-keep threshold: sampled-out lookups slower than this "
                  "are kept anyway");
  args.add_bool("help", false, "print usage");

  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  if (args.get_bool("help")) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }

  const std::string experiment = args.get_string("experiment");
  if (experiment == "fig5") return run_fig5(args);
  if (experiment == "study") return run_study(args);
  if (experiment == "ecs") return run_ecs(args);
  std::fprintf(stderr, "unknown experiment '%s'\n%s", experiment.c_str(),
               args.usage(argv[0]).c_str());
  return 2;
}
