// Live-wire MEC L-DNS: the simulated stack on real UDP sockets.
//
// Serve mode runs the same PluginChainServer the benches exercise — zone
// answers for the MEC-CDN namespace, optional ingress overload guard,
// optional forwarding to a real upstream resolver, REFUSED for everything
// else — bound to a real 127.0.0.1 port through the epoll runtime, so any
// stock client (`dig @127.0.0.1 -p <port> video.mec.test`) can query it.
// Probe mode is the matching client: one StubResolver query over its own
// epoll runtime, exit status reporting whether a valid answer came back.
//
// The CI smoke job (tools/check.sh livewire-smoke) starts a serve instance
// on an ephemeral port, probes it, and checks the answer plus the
// `sockets_leaked=0` teardown line printed here.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dns/plugin.h"
#include "dns/stub.h"
#include "mec/ingress.h"
#include "netio/epoll_runtime.h"
#include "obs/journal.h"
#include "simnet/latency.h"
#include "util/args.h"
#include "util/perfcount.h"
#include "util/strings.h"

namespace {

using namespace mecdns;

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

/// Parses "a.b.c.d:port" (the port is required: this tool never assumes 53).
util::Result<simnet::Endpoint> parse_endpoint(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos) {
    return util::Err("expected ip:port, got '" + text + "'");
  }
  auto addr = simnet::Ipv4Address::parse(text.substr(0, colon));
  if (!addr.ok()) return util::Err(addr.error().message);
  const int port = std::atoi(text.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return util::Err("bad port in '" + text + "'");
  }
  return simnet::Endpoint{addr.value(), static_cast<std::uint16_t>(port)};
}

int run_probe(const util::ArgParser& args) {
  auto server = parse_endpoint(args.get_string("server"));
  if (!server.ok()) {
    std::cerr << "error: " << server.error().message << "\n";
    return 2;
  }
  netio::EpollRuntime rt;
  dns::DnsTransport::Options options;
  options.timeout = simnet::SimTime::millis(
      static_cast<double>(args.get_int("timeout-ms")));
  options.max_retries = static_cast<int>(args.get_int("retries"));
  dns::StubResolver stub(rt, server.value(), options);

  dns::StubResult result;
  bool done = false;
  stub.resolve(dns::DnsName::must_parse(args.get_string("probe")),
               dns::RecordType::kA, [&](const dns::StubResult& r) {
                 result = r;
                 done = true;
                 rt.stop();
               });
  // The transport's retry ladder owns the failure path; this deadline is a
  // backstop against a wedged loop.
  rt.run_until(rt.now() + options.timeout * (2 + options.max_retries) +
               simnet::SimTime::seconds(1));
  if (!done || !result.ok || !result.address.has_value()) {
    std::cerr << "probe failed: "
              << (done ? (result.error.empty() ? "no A record" : result.error)
                       : "event loop deadline")
              << "\n";
    return 1;
  }
  std::cout << "ANSWER " << args.get_string("probe") << " A "
            << result.address->to_string()
            << " rtt_ms=" << result.latency.to_millis() << "\n";
  const std::string expect = args.get_string("expect-a");
  if (!expect.empty() && result.address->to_string() != expect) {
    std::cerr << "probe failed: expected A " << expect << "\n";
    return 1;
  }
  return 0;
}

int run_serve(const util::ArgParser& args) {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  netio::EpollRuntime rt;
  obs::Journal journal;
  const std::string journal_out = args.get_string("journal-out");

  std::uint64_t served = 0;
  {
    dns::PluginChainServer server(
        rt, "mec-ldns", simnet::LatencyModel::constant(simnet::SimTime::zero()),
        static_cast<std::uint16_t>(args.get_int("port")));

    // The MEC zone: --records name=ip[,name=ip...] under --zone's origin.
    auto zone = std::make_shared<dns::Zone>(
        dns::DnsName::must_parse(args.get_string("zone")));
    for (const std::string& entry :
         util::split(args.get_string("records"), ',')) {
      if (entry.empty()) continue;
      const auto eq = entry.find('=');
      if (eq == std::string::npos) {
        std::cerr << "error: --records entry '" << entry
                  << "' is not name=ip\n";
        return 2;
      }
      zone->must_add(dns::make_a(dns::DnsName::must_parse(entry.substr(0, eq)),
                                 simnet::Ipv4Address::must_parse(
                                     entry.substr(eq + 1)),
                                 static_cast<std::uint32_t>(
                                     args.get_int("ttl"))));
    }

    mec::IngressMonitor monitor;
    dns::PluginChain& chain = server.add_default_view("public");
    if (args.get_int("overload-qps") > 0) {
      auto guard = std::make_unique<mec::OverloadGuardPlugin>(
          monitor, static_cast<std::size_t>(args.get_int("overload-qps")),
          mec::OverloadAction::kServFail);
      guard->set_recovery_windows(2);
      guard->set_journal(&journal);
      chain.add(std::move(guard));
    }
    chain.add(std::make_unique<dns::ZonePlugin>(zone));
    const std::string upstream_text = args.get_string("upstream");
    if (!upstream_text.empty()) {
      auto upstream = parse_endpoint(upstream_text);
      if (!upstream.ok()) {
        std::cerr << "error: " << upstream.error().message << "\n";
        return 2;
      }
      auto forward = std::make_unique<dns::ForwardPlugin>(
          dns::DnsName::root(),
          std::vector<simnet::Endpoint>{upstream.value()},
          server.transport());
      forward->set_journal(&journal);
      chain.add(std::move(forward));
    }
    chain.add(std::make_unique<dns::RefusePlugin>());

    // The smoke harness greps this exact line for the resolved port.
    std::cout << "LISTENING " << server.endpoint().to_string() << std::endl;

    const std::int64_t duration_s = args.get_int("duration-s");
    const simnet::SimTime deadline =
        rt.now() + simnet::SimTime::seconds(static_cast<double>(duration_s));
    // Chunked run_until keeps the SIGINT flag polled even while idle.
    while (g_stop == 0 && (duration_s == 0 || rt.now() < deadline)) {
      const simnet::SimTime slice = rt.now() + simnet::SimTime::millis(100);
      rt.run_until(duration_s == 0 ? slice : std::min(slice, deadline));
    }

    const dns::ServerStats& stats = server.stats();
    served = stats.responses;
    std::cout << "queries=" << stats.queries
              << " responses=" << stats.responses
              << " refused=" << stats.refused
              << " nxdomain=" << stats.nxdomain
              << " servfail=" << stats.servfail
              << " malformed=" << stats.malformed << "\n";
    std::cout << "transport: timeouts=" << server.transport().timeouts()
              << " retransmissions=" << server.transport().retransmissions()
              << "\n";
  }  // server (and its sockets) destroyed before the leak check

  const util::perf::Counters& perf = util::perf::counters();
  std::cout << "perf: dns_encoded=" << perf.dns_encoded
            << " dns_decoded=" << perf.dns_decoded
            << " bytes_encoded=" << perf.dns_bytes_encoded
            << " queries_served=" << perf.dns_queries_served << "\n";
  std::cout << "loop: packets_received=" << rt.packets_received()
            << " packets_sent=" << rt.packets_sent()
            << " send_errors=" << rt.send_errors()
            << " timers_fired=" << rt.timers_fired()
            << " timers_cancelled=" << rt.timers_cancelled() << "\n";
  std::cout << "sockets_leaked=" << rt.open_sockets() << std::endl;

  if (!journal_out.empty() && !journal.write_json(journal_out)) {
    std::cerr << "error: cannot write " << journal_out << "\n";
    return 2;
  }
  (void)served;
  return rt.open_sockets() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "MEC L-DNS over real UDP: serve the MEC zone on a loopback port "
      "(answerable by dig), or probe a running instance once.");
  args.add_int("port", 5353, "UDP port to bind (0 = ephemeral)");
  args.add_string("zone", "mec.test", "zone origin served authoritatively");
  args.add_string("records", "video.mec.test=192.0.2.7",
                  "comma-separated name=ip A records for the zone");
  args.add_int("ttl", 60, "TTL for --records answers");
  args.add_string("upstream", "",
                  "ip:port of a real upstream resolver to forward misses to");
  args.add_int("overload-qps", 0,
               "ingress guard threshold in qps (0 = no guard)");
  args.add_int("duration-s", 0, "serve duration in seconds (0 = until SIGINT)");
  args.add_string("journal-out", "",
                  "write the control-plane journal JSON here on exit");
  args.add_string("probe", "",
                  "probe mode: resolve this name against --server and exit");
  args.add_string("server", "127.0.0.1:5353", "probe mode: server ip:port");
  args.add_int("timeout-ms", 1000, "probe mode: per-attempt timeout");
  args.add_int("retries", 2, "probe mode: retransmissions after first send");
  args.add_string("expect-a", "",
                  "probe mode: fail unless the answer matches this address");

  auto parsed = args.parse(argc - 1, argv + 1);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.error().message << "\n"
              << args.usage(argv[0]);
    return 2;
  }
  return args.get_string("probe").empty() ? run_serve(args) : run_probe(args);
}
