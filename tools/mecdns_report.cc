// mecdns_report — offline analysis over the telemetry the testbed and
// benches emit.
//
//   mecdns_report --trace trace.json              # critical-path breakdown
//   mecdns_report --metrics metrics.json          # counters/gauges/histograms
//   mecdns_report --timeseries series.json        # per-window SLO verdicts
//   mecdns_report --bench BENCH_fig2.json         # scenario summary table
//   mecdns_report --incidents BENCH_incidents.json  # MTTD/MTTR timelines
//   mecdns_report --diff OLD.json --against NEW.json        # regression gate
//   mecdns_report --diff-bytes A.json --against B.json      # determinism gate
//
// --diff compares two BENCH_*.json files scenario by scenario and exits
// nonzero when a latency metric regressed beyond both the relative
// (--rel) and absolute (--abs-ms) thresholds, naming the regressed
// scenario/metric — so check.sh and CI can gate on it. --diff-bytes demands
// exact byte equality (serial vs parallel campaign output). Exit codes:
// 0 clean, 1 regression/difference found, 2 usage or parse error.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/analysis.h"
#include "obs/benchdiff.h"
#include "util/args.h"
#include "util/json.h"

using namespace mecdns;

namespace {

// --- --trace: critical path over a Chrome trace-event file ----------------

/// Rebuilds the flat span list from the trace-event JSON the TraceSink
/// writes (ph:"X" events with args.span/args.parent, microsecond ts/dur).
util::Result<std::vector<obs::SpanInfo>> spans_from_trace(
    const util::JsonValue& doc) {
  if (!doc.is_object() || !doc.get("traceEvents").is_array()) {
    return util::Err("not a trace-event file (no traceEvents array)");
  }
  const util::JsonValue& events = doc.get("traceEvents");
  std::vector<obs::SpanInfo> spans;
  spans.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::JsonValue& e = events.at(i);
    if (!e.is_object() || e.get("ph").as_string() != "X") continue;
    const util::JsonValue& args = e.get("args");
    obs::SpanInfo info;
    info.id = static_cast<obs::SpanId>(args.get("span").as_double());
    info.parent = static_cast<obs::SpanId>(args.get("parent").as_double());
    info.component = e.get("cat").as_string();
    info.name = e.get("name").as_string();
    info.start_ms = e.get("ts").as_double() / 1000.0;
    info.dur_ms = e.get("dur").as_double() / 1000.0;
    info.finished = !args.get("unfinished").as_bool();
    spans.push_back(std::move(info));
  }
  return spans;
}

int report_trace(const std::string& path, std::size_t slowest_n) {
  auto doc = util::JsonValue::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.error().message.c_str());
    return 2;
  }
  auto spans = spans_from_trace(doc.value());
  if (!spans.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                 spans.error().message.c_str());
    return 2;
  }
  const obs::CriticalPathReport report =
      obs::critical_path(spans.value(), slowest_n);
  std::printf("=== critical path: %s (%zu spans) ===\n", path.c_str(),
              spans.value().size());
  std::printf("%s", obs::stage_table(report).c_str());
  if (report.unfinished > 0) {
    std::fprintf(stderr,
                 "warning: %zu unfinished span(s) in %s — a span guard was "
                 "dropped without end(), or the run was cut short\n",
                 report.unfinished, path.c_str());
  }
  return 0;
}

// --- --metrics: flat registry dump ----------------------------------------

void print_registry(const util::JsonValue& reg, const std::string& indent) {
  const util::JsonValue& counters = reg.get("counters");
  for (const auto& [name, value] : counters.members()) {
    std::printf("%s%-44s %12.0f\n", indent.c_str(), name.c_str(),
                value.as_double());
  }
  const util::JsonValue& gauges = reg.get("gauges");
  for (const auto& [name, value] : gauges.members()) {
    std::printf("%s%-44s %12.3f\n", indent.c_str(), name.c_str(),
                value.as_double());
  }
  const util::JsonValue& histograms = reg.get("histograms");
  for (const auto& [name, h] : histograms.members()) {
    std::printf("%s%-34s n=%-6.0f mean=%-8.3f p50=%-8.3f p99=%-8.3f "
                "max=%.3f\n",
                indent.c_str(), name.c_str(), h.get("count").as_double(),
                h.get("mean").as_double(), h.get("p50").as_double(),
                h.get("p99").as_double(), h.get("max").as_double());
  }
}

int report_metrics(const std::string& path) {
  auto doc = util::JsonValue::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.error().message.c_str());
    return 2;
  }
  if (!doc.value().has("counters") && !doc.value().has("histograms")) {
    std::fprintf(stderr, "error: %s: not a metrics file\n", path.c_str());
    return 2;
  }
  std::printf("=== metrics: %s ===\n", path.c_str());
  print_registry(doc.value(), "  ");
  return 0;
}

// --- --timeseries: per-window table + SLO verdicts ------------------------

/// Conservative per-window quantile from the serialized bucket list: the
/// upper edge (le) of the bucket holding the q-th sample. Matches
/// LatencyHistogram::percentile's bucket resolution.
double bucket_percentile(const util::JsonValue& hist, double q) {
  const double count = hist.get("count").as_double();
  if (count <= 0.0) return 0.0;
  const double rank = q / 100.0 * count;
  const util::JsonValue& buckets = hist.get("buckets");
  double seen = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets.at(i).get("n").as_double();
    if (seen >= rank) return buckets.at(i).get("le").as_double();
  }
  return hist.get("max").as_double();
}

/// Looks the name up in a window's registry JSON; {} / 0 when absent.
const util::JsonValue& window_hist(const util::JsonValue& window,
                                   const std::string& name) {
  return window.get("metrics").get("histograms").get(name);
}

double window_counter(const util::JsonValue& window, const std::string& name) {
  return window.get("metrics").get("counters").get(name).as_double();
}

int report_timeseries(const std::string& path, double slo_p99_ms,
                      double slo_success_target) {
  auto doc = util::JsonValue::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.error().message.c_str());
    return 2;
  }
  const util::JsonValue& root = doc.value();
  if (!root.has("windows")) {
    std::fprintf(stderr, "error: %s: not a timeseries file\n", path.c_str());
    return 2;
  }
  const util::JsonValue& windows = root.get("windows");
  std::printf("=== timeseries: %s (%zu windows of %.0f ms) ===\n",
              path.c_str(), windows.size(),
              root.get("window_ms").as_double());

  // The testbed path records runner.*; the fault bench records fetch.*.
  // Report whichever the file actually carries.
  const bool fetch_style =
      windows.size() > 0 &&
      windows.at(0).get("metrics").get("counters").has("fetch.requests");
  const std::string total_name =
      fetch_style ? "fetch.requests" : "runner.queries";
  const std::string bad_name =
      fetch_style ? "fetch.failures" : "runner.failures";
  const std::string hist_name =
      fetch_style ? "fetch.total_ms" : "runner.lookup_ms";

  std::printf("%10s %10s %8s %8s %10s %10s  %s\n", "start_ms", "end_ms",
              "total", "bad", "p99(ms)", "burn", "verdict");
  const double allowed_bad = 1.0 - slo_success_target;
  std::size_t latency_violations = 0;
  std::size_t success_violations = 0;
  double total = 0.0;
  double bad = 0.0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const util::JsonValue& w = windows.at(i);
    const double w_total = window_counter(w, total_name);
    const double w_bad = window_counter(w, bad_name);
    const util::JsonValue& hist = window_hist(w, hist_name);
    const double p99 = bucket_percentile(hist, 99.0);
    total += w_total;
    bad += w_bad;
    const bool latency_ok = hist.get("count").as_double() == 0.0 ||
                            p99 <= slo_p99_ms;
    const bool success_ok =
        w_total == 0.0 || (w_total - w_bad) / w_total >= slo_success_target;
    if (!latency_ok) ++latency_violations;
    if (!success_ok) ++success_violations;
    const double burn =
        w_total > 0.0 && allowed_bad > 0.0 ? (w_bad / w_total) / allowed_bad
                                           : 0.0;
    std::string verdict;
    if (!latency_ok) {
      char over[32];
      std::snprintf(over, sizeof(over), "p99>%.0fms ", slo_p99_ms);
      verdict += over;
    }
    if (!success_ok) verdict += "success-SLO-violated";
    if (verdict.empty()) verdict = "ok";
    std::printf("%10.0f %10.0f %8.0f %8.0f %10.3f %10.2f  %s\n",
                w.get("start_ms").as_double(), w.get("end_ms").as_double(),
                w_total, w_bad, p99, burn, verdict.c_str());
  }
  const util::JsonValue& annotations = root.get("annotations");
  if (annotations.size() > 0) {
    std::printf("annotations:\n");
    for (std::size_t i = 0; i < annotations.size(); ++i) {
      const util::JsonValue& a = annotations.at(i);
      std::printf("  %10.0f ms  %-12s %s\n", a.get("t_ms").as_double(),
                  a.get("kind").as_string().c_str(),
                  a.get("description").as_string().c_str());
    }
  }
  const double budget =
      total > 0.0 && allowed_bad > 0.0 ? bad / (allowed_bad * total) : 0.0;
  std::printf(
      "slo[p99<=%.0fms]: %s (%zu/%zu windows violated)\n", slo_p99_ms,
      latency_violations == 0 ? "MET" : "VIOLATED", latency_violations,
      windows.size());
  std::printf(
      "slo[success>=%.1f%%]: %s (%zu/%zu windows violated, budget %.2fx)\n",
      100.0 * slo_success_target,
      success_violations == 0 ? "MET" : "VIOLATED", success_violations,
      windows.size(), budget);
  return 0;
}

// --- --bench / --diff: BENCH_*.json tables and regression gating ----------

/// google-benchmark JSON ({"context": ..., "benchmarks": [...]}) — the
/// BENCH_micro.json artifact.
int report_bench_micro(const std::string& path, const util::JsonValue& root) {
  std::printf("=== bench micro: %s ===\n", path.c_str());
  std::printf("%-44s %14s %14s %12s\n", "benchmark", "real(ns)", "cpu(ns)",
              "iterations");
  const util::JsonValue& benchmarks = root.get("benchmarks");
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const util::JsonValue& b = benchmarks.at(i);
    std::printf("%-44s %14.1f %14.1f %12.0f\n",
                b.get("name").as_string().c_str(),
                b.get("real_time").as_double(),
                b.get("cpu_time").as_double(),
                b.get("iterations").as_double());
  }
  return 0;
}

/// BENCH_throughput.json: per-query cost and latency-under-load columns.
int report_bench_throughput(const std::string& path,
                            const util::JsonValue& root) {
  std::printf("=== bench throughput: %s ===\n", path.c_str());
  std::printf("%-12s %8s %9s %9s %8s %8s %9s %8s %8s\n", "scenario", "ues",
              "queries", "qps_sim", "ev/q", "alloc/q", "wireB/q", "p50",
              "p99");
  const util::JsonValue& scenarios = root.get("scenarios");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const util::JsonValue& s = scenarios.at(i);
    std::printf("%-12s %8.0f %9.0f %9.1f %8.2f ",
                s.get("scenario").as_string().c_str(),
                s.get("ues").as_double(), s.get("queries").as_double(),
                s.get("qps_sim").as_double(),
                s.get("events_per_query").as_double());
    if (s.has("allocs_per_query")) {
      std::printf("%8.1f ", s.get("allocs_per_query").as_double());
    } else {
      std::printf("%8s ", "-");
    }
    std::printf("%9.1f %8.3f %8.3f\n",
                s.get("wire_bytes_per_query").as_double(),
                s.get("p50").as_double(), s.get("p99").as_double());
  }
  return 0;
}

int report_bench(const std::string& path) {
  auto doc = util::JsonValue::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.error().message.c_str());
    return 2;
  }
  const util::JsonValue& root = doc.value();
  if (root.get("benchmarks").is_array()) {
    return report_bench_micro(path, root);
  }
  if (!root.get("scenarios").is_array()) {
    std::fprintf(stderr, "error: %s: not a bench file\n", path.c_str());
    return 2;
  }
  if (root.get("bench").as_string() == "throughput") {
    return report_bench_throughput(path, root);
  }
  std::printf("=== bench %s: %s ===\n",
              root.get("bench").as_string().c_str(), path.c_str());
  std::printf("%-40s %10s %10s %10s %10s\n", "scenario", "mean", "p50",
              "p99", "success");
  const util::JsonValue& scenarios = root.get("scenarios");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const util::JsonValue& s = scenarios.at(i);
    std::string name = s.get("scenario").as_string();
    if (s.has("mode")) name += "/" + s.get("mode").as_string();
    std::printf("%-40s %10.3f %10.3f %10.3f %10s\n", name.c_str(),
                s.get("mean").as_double(), s.get("p50").as_double(),
                s.get("p99").as_double(),
                s.has("success_rate")
                    ? (std::to_string(s.get("success_rate").as_double())
                           .substr(0, 6)
                           .c_str())
                    : "-");
  }
  return 0;
}

// --- --incidents: BENCH_incidents.json forensics tables -------------------

/// -1 sentinels read as words, not numbers: MTTD -1 = nothing reacted,
/// MTTR -1 = the objective never came back.
std::string grade_ms(double value, const char* if_negative) {
  if (value < 0.0) return if_negative;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

/// BENCH_incidents.json: the per-scenario MTTD/MTTR summary table, then a
/// causal timeline table per incident. Exit 0 rendered, 2 parse error.
int report_incidents(const std::string& path) {
  auto doc = util::JsonValue::parse_file(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "error: %s\n", doc.error().message.c_str());
    return 2;
  }
  const util::JsonValue& root = doc.value();
  const util::JsonValue& scenarios = root.get("scenarios");
  if (!scenarios.is_array() ||
      (scenarios.size() > 0 && !scenarios.at(0).has("incidents"))) {
    std::fprintf(stderr, "error: %s: not an incidents file\n", path.c_str());
    return 2;
  }
  std::printf("=== incident forensics: %s ===\n", path.c_str());
  if (root.get("meta").is_object()) {
    const util::JsonValue& meta = root.get("meta");
    std::printf("schema %d, seed %.0f, %s build\n",
                static_cast<int>(meta.get("schema").as_double()),
                meta.get("seed").as_double(),
                meta.get("build").as_string().c_str());
  }
  std::printf("%-32s %9s %10s %10s %8s %6s %8s\n", "scenario", "incidents",
              "mttd(ms)", "mttr(ms)", "actions", "cells", "orphans");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const util::JsonValue& s = scenarios.at(i);
    std::string name = s.get("scenario").as_string();
    if (s.has("mode")) name += "/" + s.get("mode").as_string();
    std::printf("%-32s %9.0f %10s %10s %8.0f %6.0f %8.0f\n", name.c_str(),
                s.get("incidents").as_double(),
                grade_ms(s.get("mttd_ms").as_double(), "none").c_str(),
                grade_ms(s.get("mttr_ms").as_double(), "never").c_str(),
                s.get("actions").as_double(),
                s.get("cells_affected").as_double(),
                s.get("orphan_events").as_double());
    if (s.get("journal_dropped").as_double() > 0.0) {
      std::printf("%-32s   WARNING: ring overflowed, %0.f oldest events "
                  "dropped\n",
                  "", s.get("journal_dropped").as_double());
    }
  }
  // Timelines after the summary so the verdict is readable first.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const util::JsonValue& s = scenarios.at(i);
    std::string name = s.get("scenario").as_string();
    if (s.has("mode")) name += "/" + s.get("mode").as_string();
    const util::JsonValue& detail = s.get("detail");
    for (std::size_t j = 0; j < detail.size(); ++j) {
      const util::JsonValue& inc = detail.at(j);
      std::printf("\n--- %s incident #%d: [%.1f, %.1f] ms, mttd %s, "
                  "mttr %s ---\n",
                  name.c_str(), static_cast<int>(inc.get("id").as_double()),
                  inc.get("start_ms").as_double(),
                  inc.get("end_ms").as_double(),
                  grade_ms(inc.get("mttd_ms").as_double(), "none").c_str(),
                  grade_ms(inc.get("mttr_ms").as_double(), "never").c_str());
      std::printf("%10s %-18s %5s %12s %12s  %s\n", "t(ms)", "event", "cell",
                  "a", "b", "detail");
      const util::JsonValue& timeline = inc.get("timeline");
      for (std::size_t k = 0; k < timeline.size(); ++k) {
        const util::JsonValue& e = timeline.at(k);
        std::printf("%10.1f %-18s %5.0f %12.0f %12.0f  %s\n",
                    e.get("t_ms").as_double(),
                    e.get("kind").as_string().c_str(),
                    e.get("cell").as_double(), e.get("a").as_double(),
                    e.get("b").as_double(),
                    e.get("detail").as_string().c_str());
      }
    }
  }
  return 0;
}

/// --diff-bytes: exact byte equality between two artifact files — the CI
/// gate for the parallel campaign's determinism contract (serial and
/// parallel runs of the same bench must produce identical bytes, not just
/// semantically-equal numbers). Exit 0 equal, 1 different, 2 I/O error.
int report_diff_bytes(const std::string& a_path, const std::string& b_path) {
  const auto slurp = [](const std::string& path,
                        std::string& out) -> bool {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return false;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
  };
  std::string a;
  std::string b;
  if (!slurp(a_path, a)) {
    std::fprintf(stderr, "error: cannot read %s\n", a_path.c_str());
    return 2;
  }
  if (!slurp(b_path, b)) {
    std::fprintf(stderr, "error: cannot read %s\n", b_path.c_str());
    return 2;
  }
  if (a == b) {
    std::printf("=== diff-bytes: %s == %s (%zu bytes) ===\n", a_path.c_str(),
                b_path.c_str(), a.size());
    return 0;
  }
  std::size_t offset = 0;
  const std::size_t limit = std::min(a.size(), b.size());
  while (offset < limit && a[offset] == b[offset]) ++offset;
  std::fprintf(stderr,
               "diff-bytes: %s (%zu bytes) != %s (%zu bytes), first "
               "difference at byte %zu\n",
               a_path.c_str(), a.size(), b_path.c_str(), b.size(), offset);
  return 1;
}

int report_diff(const std::string& old_path, const std::string& new_path,
                const std::vector<obs::MetricRule>& rules, double rel,
                double abs_ms) {
  auto old_doc = util::JsonValue::parse_file(old_path);
  auto new_doc = util::JsonValue::parse_file(new_path);
  if (!old_doc.ok() || !new_doc.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!old_doc.ok() ? old_doc : new_doc).error().message.c_str());
    return 2;
  }
  if (!old_doc.value().get("scenarios").is_array() ||
      !new_doc.value().get("scenarios").is_array()) {
    std::fprintf(stderr, "error: --diff needs two BENCH_*.json files\n");
    return 2;
  }
  std::printf("=== diff: %s -> %s (rel %.1f%%, abs %.2f ms) ===\n",
              old_path.c_str(), new_path.c_str(), 100.0 * rel, abs_ms);
  const obs::BenchDiff diff =
      obs::diff_bench(old_doc.value(), new_doc.value(), rules);
  std::printf("%s", obs::diff_report(diff).c_str());
  if (diff.clean()) return 0;
  std::fprintf(stderr, "%zu regression(s) found\n",
               diff.regressions.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "mecdns_report: stage breakdowns, SLO verdicts and regression diffs "
      "over testbed/bench telemetry");
  args.add_string("trace", "", "Chrome trace-event JSON (--trace-out file)");
  args.add_string("metrics", "", "metrics JSON (--metrics-out file)");
  args.add_string("timeseries", "",
                  "windowed-metrics JSON (--timeseries-out file)");
  args.add_string("bench", "", "BENCH_*.json summary file");
  args.add_string("incidents", "",
                  "BENCH_incidents.json forensics file: MTTD/MTTR summary "
                  "plus per-incident causal timelines");
  args.add_string("diff", "",
                  "baseline BENCH_*.json; compares against --against");
  args.add_string("diff-bytes", "",
                  "first artifact for exact byte comparison with --against "
                  "(parallel-campaign determinism gate)");
  args.add_string("against", "",
                  "candidate file for --diff / --diff-bytes");
  args.add_int("slowest", 5, "exemplar traces to list (--trace)");
  args.add_double("slo-p99-ms", 20.0,
                  "per-window p99 latency budget (--timeseries)");
  args.add_double("slo-success-target", 0.99,
                  "per-window success-ratio objective (--timeseries)");
  args.add_double("rel", 0.05, "relative regression threshold (--diff)");
  args.add_double("abs-ms", 0.5, "absolute regression threshold (--diff)");
  args.add_string("tol", "",
                  "per-metric percent tolerances for --diff, e.g. "
                  "'p99=10,allocs_per_query=2' (overrides --rel per key)");
  args.add_bool("help", false, "print usage");

  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  if (args.get_bool("help")) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }

  bool did_anything = false;
  int worst = 0;
  const auto run = [&](int rc) {
    did_anything = true;
    worst = std::max(worst, rc);
  };
  if (!args.get_string("trace").empty()) {
    run(report_trace(args.get_string("trace"),
                     static_cast<std::size_t>(args.get_int("slowest"))));
  }
  if (!args.get_string("metrics").empty()) {
    run(report_metrics(args.get_string("metrics")));
  }
  if (!args.get_string("timeseries").empty()) {
    run(report_timeseries(args.get_string("timeseries"),
                          args.get_double("slo-p99-ms"),
                          args.get_double("slo-success-target")));
  }
  if (!args.get_string("bench").empty()) {
    run(report_bench(args.get_string("bench")));
  }
  if (!args.get_string("incidents").empty()) {
    run(report_incidents(args.get_string("incidents")));
  }
  if (!args.get_string("diff").empty()) {
    if (args.get_string("against").empty()) {
      std::fprintf(stderr, "--diff needs --against <candidate.json>\n");
      return 2;
    }
    const double rel = args.get_double("rel");
    const double abs_ms = args.get_double("abs-ms");
    std::vector<obs::MetricRule> rules =
        obs::default_metric_rules(rel, abs_ms);
    std::string tol_error;
    if (!obs::apply_tolerances(rules, args.get_string("tol"), tol_error)) {
      std::fprintf(stderr, "error: %s\n", tol_error.c_str());
      return 2;
    }
    run(report_diff(args.get_string("diff"), args.get_string("against"),
                    rules, rel, abs_ms));
  }
  if (!args.get_string("diff-bytes").empty()) {
    if (args.get_string("against").empty()) {
      std::fprintf(stderr, "--diff-bytes needs --against <file>\n");
      return 2;
    }
    run(report_diff_bytes(args.get_string("diff-bytes"),
                          args.get_string("against")));
  }
  if (!did_anything) {
    std::fprintf(stderr, "nothing to do\n%s", args.usage(argv[0]).c_str());
    return 2;
  }
  return worst;
}
