# Empty compiler generated dependencies file for mecdns_cdn.
# This may be replaced when dependencies are built.
