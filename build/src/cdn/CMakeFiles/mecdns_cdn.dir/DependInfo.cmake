
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/cache_server.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/cache_server.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/cache_server.cc.o.d"
  "/root/repo/src/cdn/consistent_hash.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/consistent_hash.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/consistent_hash.cc.o.d"
  "/root/repo/src/cdn/content.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/content.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/content.cc.o.d"
  "/root/repo/src/cdn/coverage.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/coverage.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/coverage.cc.o.d"
  "/root/repo/src/cdn/geo.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/geo.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/geo.cc.o.d"
  "/root/repo/src/cdn/opaque_router.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/opaque_router.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/opaque_router.cc.o.d"
  "/root/repo/src/cdn/traffic_monitor.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/traffic_monitor.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/traffic_monitor.cc.o.d"
  "/root/repo/src/cdn/traffic_router.cc" "src/cdn/CMakeFiles/mecdns_cdn.dir/traffic_router.cc.o" "gcc" "src/cdn/CMakeFiles/mecdns_cdn.dir/traffic_router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/mecdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mecdns_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
