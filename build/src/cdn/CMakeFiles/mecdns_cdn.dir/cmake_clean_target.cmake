file(REMOVE_RECURSE
  "libmecdns_cdn.a"
)
