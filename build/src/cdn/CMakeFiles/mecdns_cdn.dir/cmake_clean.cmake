file(REMOVE_RECURSE
  "CMakeFiles/mecdns_cdn.dir/cache_server.cc.o"
  "CMakeFiles/mecdns_cdn.dir/cache_server.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/consistent_hash.cc.o"
  "CMakeFiles/mecdns_cdn.dir/consistent_hash.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/content.cc.o"
  "CMakeFiles/mecdns_cdn.dir/content.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/coverage.cc.o"
  "CMakeFiles/mecdns_cdn.dir/coverage.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/geo.cc.o"
  "CMakeFiles/mecdns_cdn.dir/geo.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/opaque_router.cc.o"
  "CMakeFiles/mecdns_cdn.dir/opaque_router.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/traffic_monitor.cc.o"
  "CMakeFiles/mecdns_cdn.dir/traffic_monitor.cc.o.d"
  "CMakeFiles/mecdns_cdn.dir/traffic_router.cc.o"
  "CMakeFiles/mecdns_cdn.dir/traffic_router.cc.o.d"
  "libmecdns_cdn.a"
  "libmecdns_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
