file(REMOVE_RECURSE
  "CMakeFiles/mecdns_core.dir/experiment.cc.o"
  "CMakeFiles/mecdns_core.dir/experiment.cc.o.d"
  "CMakeFiles/mecdns_core.dir/fig5.cc.o"
  "CMakeFiles/mecdns_core.dir/fig5.cc.o.d"
  "CMakeFiles/mecdns_core.dir/mec_cdn.cc.o"
  "CMakeFiles/mecdns_core.dir/mec_cdn.cc.o.d"
  "CMakeFiles/mecdns_core.dir/replay.cc.o"
  "CMakeFiles/mecdns_core.dir/replay.cc.o.d"
  "CMakeFiles/mecdns_core.dir/roles.cc.o"
  "CMakeFiles/mecdns_core.dir/roles.cc.o.d"
  "CMakeFiles/mecdns_core.dir/study.cc.o"
  "CMakeFiles/mecdns_core.dir/study.cc.o.d"
  "libmecdns_core.a"
  "libmecdns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
