# Empty compiler generated dependencies file for mecdns_core.
# This may be replaced when dependencies are built.
