file(REMOVE_RECURSE
  "libmecdns_core.a"
)
