file(REMOVE_RECURSE
  "CMakeFiles/mecdns_workload.dir/domains.cc.o"
  "CMakeFiles/mecdns_workload.dir/domains.cc.o.d"
  "CMakeFiles/mecdns_workload.dir/trace.cc.o"
  "CMakeFiles/mecdns_workload.dir/trace.cc.o.d"
  "CMakeFiles/mecdns_workload.dir/zipf.cc.o"
  "CMakeFiles/mecdns_workload.dir/zipf.cc.o.d"
  "libmecdns_workload.a"
  "libmecdns_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
