file(REMOVE_RECURSE
  "libmecdns_workload.a"
)
