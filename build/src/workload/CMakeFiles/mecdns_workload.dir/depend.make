# Empty dependencies file for mecdns_workload.
# This may be replaced when dependencies are built.
