# Empty dependencies file for mecdns_dns.
# This may be replaced when dependencies are built.
