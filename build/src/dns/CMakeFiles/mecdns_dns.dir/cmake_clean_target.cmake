file(REMOVE_RECURSE
  "libmecdns_dns.a"
)
