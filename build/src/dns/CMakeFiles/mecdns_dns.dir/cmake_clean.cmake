file(REMOVE_RECURSE
  "CMakeFiles/mecdns_dns.dir/cache.cc.o"
  "CMakeFiles/mecdns_dns.dir/cache.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/edns.cc.o"
  "CMakeFiles/mecdns_dns.dir/edns.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/hierarchy.cc.o"
  "CMakeFiles/mecdns_dns.dir/hierarchy.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/master.cc.o"
  "CMakeFiles/mecdns_dns.dir/master.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/message.cc.o"
  "CMakeFiles/mecdns_dns.dir/message.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/name.cc.o"
  "CMakeFiles/mecdns_dns.dir/name.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/plugin.cc.o"
  "CMakeFiles/mecdns_dns.dir/plugin.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/recursive.cc.o"
  "CMakeFiles/mecdns_dns.dir/recursive.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/rr.cc.o"
  "CMakeFiles/mecdns_dns.dir/rr.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/server.cc.o"
  "CMakeFiles/mecdns_dns.dir/server.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/stub.cc.o"
  "CMakeFiles/mecdns_dns.dir/stub.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/transport.cc.o"
  "CMakeFiles/mecdns_dns.dir/transport.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/wire.cc.o"
  "CMakeFiles/mecdns_dns.dir/wire.cc.o.d"
  "CMakeFiles/mecdns_dns.dir/zone.cc.o"
  "CMakeFiles/mecdns_dns.dir/zone.cc.o.d"
  "libmecdns_dns.a"
  "libmecdns_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
