
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/cache.cc" "src/dns/CMakeFiles/mecdns_dns.dir/cache.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/cache.cc.o.d"
  "/root/repo/src/dns/edns.cc" "src/dns/CMakeFiles/mecdns_dns.dir/edns.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/edns.cc.o.d"
  "/root/repo/src/dns/hierarchy.cc" "src/dns/CMakeFiles/mecdns_dns.dir/hierarchy.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/hierarchy.cc.o.d"
  "/root/repo/src/dns/master.cc" "src/dns/CMakeFiles/mecdns_dns.dir/master.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/master.cc.o.d"
  "/root/repo/src/dns/message.cc" "src/dns/CMakeFiles/mecdns_dns.dir/message.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/message.cc.o.d"
  "/root/repo/src/dns/name.cc" "src/dns/CMakeFiles/mecdns_dns.dir/name.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/name.cc.o.d"
  "/root/repo/src/dns/plugin.cc" "src/dns/CMakeFiles/mecdns_dns.dir/plugin.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/plugin.cc.o.d"
  "/root/repo/src/dns/recursive.cc" "src/dns/CMakeFiles/mecdns_dns.dir/recursive.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/recursive.cc.o.d"
  "/root/repo/src/dns/rr.cc" "src/dns/CMakeFiles/mecdns_dns.dir/rr.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/rr.cc.o.d"
  "/root/repo/src/dns/server.cc" "src/dns/CMakeFiles/mecdns_dns.dir/server.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/server.cc.o.d"
  "/root/repo/src/dns/stub.cc" "src/dns/CMakeFiles/mecdns_dns.dir/stub.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/stub.cc.o.d"
  "/root/repo/src/dns/transport.cc" "src/dns/CMakeFiles/mecdns_dns.dir/transport.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/transport.cc.o.d"
  "/root/repo/src/dns/wire.cc" "src/dns/CMakeFiles/mecdns_dns.dir/wire.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/wire.cc.o.d"
  "/root/repo/src/dns/zone.cc" "src/dns/CMakeFiles/mecdns_dns.dir/zone.cc.o" "gcc" "src/dns/CMakeFiles/mecdns_dns.dir/zone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/mecdns_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
