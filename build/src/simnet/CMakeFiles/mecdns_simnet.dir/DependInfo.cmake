
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/ip.cc" "src/simnet/CMakeFiles/mecdns_simnet.dir/ip.cc.o" "gcc" "src/simnet/CMakeFiles/mecdns_simnet.dir/ip.cc.o.d"
  "/root/repo/src/simnet/latency.cc" "src/simnet/CMakeFiles/mecdns_simnet.dir/latency.cc.o" "gcc" "src/simnet/CMakeFiles/mecdns_simnet.dir/latency.cc.o.d"
  "/root/repo/src/simnet/network.cc" "src/simnet/CMakeFiles/mecdns_simnet.dir/network.cc.o" "gcc" "src/simnet/CMakeFiles/mecdns_simnet.dir/network.cc.o.d"
  "/root/repo/src/simnet/simulator.cc" "src/simnet/CMakeFiles/mecdns_simnet.dir/simulator.cc.o" "gcc" "src/simnet/CMakeFiles/mecdns_simnet.dir/simulator.cc.o.d"
  "/root/repo/src/simnet/time.cc" "src/simnet/CMakeFiles/mecdns_simnet.dir/time.cc.o" "gcc" "src/simnet/CMakeFiles/mecdns_simnet.dir/time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mecdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
