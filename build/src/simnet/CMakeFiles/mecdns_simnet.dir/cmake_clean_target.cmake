file(REMOVE_RECURSE
  "libmecdns_simnet.a"
)
