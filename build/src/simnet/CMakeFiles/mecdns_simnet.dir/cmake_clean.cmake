file(REMOVE_RECURSE
  "CMakeFiles/mecdns_simnet.dir/ip.cc.o"
  "CMakeFiles/mecdns_simnet.dir/ip.cc.o.d"
  "CMakeFiles/mecdns_simnet.dir/latency.cc.o"
  "CMakeFiles/mecdns_simnet.dir/latency.cc.o.d"
  "CMakeFiles/mecdns_simnet.dir/network.cc.o"
  "CMakeFiles/mecdns_simnet.dir/network.cc.o.d"
  "CMakeFiles/mecdns_simnet.dir/simulator.cc.o"
  "CMakeFiles/mecdns_simnet.dir/simulator.cc.o.d"
  "CMakeFiles/mecdns_simnet.dir/time.cc.o"
  "CMakeFiles/mecdns_simnet.dir/time.cc.o.d"
  "libmecdns_simnet.a"
  "libmecdns_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
