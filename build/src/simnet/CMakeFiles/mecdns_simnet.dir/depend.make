# Empty dependencies file for mecdns_simnet.
# This may be replaced when dependencies are built.
