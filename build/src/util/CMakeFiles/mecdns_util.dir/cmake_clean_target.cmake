file(REMOVE_RECURSE
  "libmecdns_util.a"
)
