file(REMOVE_RECURSE
  "CMakeFiles/mecdns_util.dir/args.cc.o"
  "CMakeFiles/mecdns_util.dir/args.cc.o.d"
  "CMakeFiles/mecdns_util.dir/bytes.cc.o"
  "CMakeFiles/mecdns_util.dir/bytes.cc.o.d"
  "CMakeFiles/mecdns_util.dir/log.cc.o"
  "CMakeFiles/mecdns_util.dir/log.cc.o.d"
  "CMakeFiles/mecdns_util.dir/stats.cc.o"
  "CMakeFiles/mecdns_util.dir/stats.cc.o.d"
  "CMakeFiles/mecdns_util.dir/strings.cc.o"
  "CMakeFiles/mecdns_util.dir/strings.cc.o.d"
  "libmecdns_util.a"
  "libmecdns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
