# Empty compiler generated dependencies file for mecdns_util.
# This may be replaced when dependencies are built.
