
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/handoff.cc" "src/ran/CMakeFiles/mecdns_ran.dir/handoff.cc.o" "gcc" "src/ran/CMakeFiles/mecdns_ran.dir/handoff.cc.o.d"
  "/root/repo/src/ran/profiles.cc" "src/ran/CMakeFiles/mecdns_ran.dir/profiles.cc.o" "gcc" "src/ran/CMakeFiles/mecdns_ran.dir/profiles.cc.o.d"
  "/root/repo/src/ran/segment.cc" "src/ran/CMakeFiles/mecdns_ran.dir/segment.cc.o" "gcc" "src/ran/CMakeFiles/mecdns_ran.dir/segment.cc.o.d"
  "/root/repo/src/ran/tap.cc" "src/ran/CMakeFiles/mecdns_ran.dir/tap.cc.o" "gcc" "src/ran/CMakeFiles/mecdns_ran.dir/tap.cc.o.d"
  "/root/repo/src/ran/ue.cc" "src/ran/CMakeFiles/mecdns_ran.dir/ue.cc.o" "gcc" "src/ran/CMakeFiles/mecdns_ran.dir/ue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/mecdns_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/mecdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mecdns_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
