file(REMOVE_RECURSE
  "libmecdns_ran.a"
)
