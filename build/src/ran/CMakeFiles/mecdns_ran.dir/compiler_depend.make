# Empty compiler generated dependencies file for mecdns_ran.
# This may be replaced when dependencies are built.
