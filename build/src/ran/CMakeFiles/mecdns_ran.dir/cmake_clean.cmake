file(REMOVE_RECURSE
  "CMakeFiles/mecdns_ran.dir/handoff.cc.o"
  "CMakeFiles/mecdns_ran.dir/handoff.cc.o.d"
  "CMakeFiles/mecdns_ran.dir/profiles.cc.o"
  "CMakeFiles/mecdns_ran.dir/profiles.cc.o.d"
  "CMakeFiles/mecdns_ran.dir/segment.cc.o"
  "CMakeFiles/mecdns_ran.dir/segment.cc.o.d"
  "CMakeFiles/mecdns_ran.dir/tap.cc.o"
  "CMakeFiles/mecdns_ran.dir/tap.cc.o.d"
  "CMakeFiles/mecdns_ran.dir/ue.cc.o"
  "CMakeFiles/mecdns_ran.dir/ue.cc.o.d"
  "libmecdns_ran.a"
  "libmecdns_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
