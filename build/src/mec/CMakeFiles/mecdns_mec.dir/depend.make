# Empty dependencies file for mecdns_mec.
# This may be replaced when dependencies are built.
