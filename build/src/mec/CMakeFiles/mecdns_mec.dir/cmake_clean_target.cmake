file(REMOVE_RECURSE
  "libmecdns_mec.a"
)
