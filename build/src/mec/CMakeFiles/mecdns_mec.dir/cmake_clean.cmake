file(REMOVE_RECURSE
  "CMakeFiles/mecdns_mec.dir/cluster.cc.o"
  "CMakeFiles/mecdns_mec.dir/cluster.cc.o.d"
  "CMakeFiles/mecdns_mec.dir/ingress.cc.o"
  "CMakeFiles/mecdns_mec.dir/ingress.cc.o.d"
  "CMakeFiles/mecdns_mec.dir/orchestrator.cc.o"
  "CMakeFiles/mecdns_mec.dir/orchestrator.cc.o.d"
  "CMakeFiles/mecdns_mec.dir/registry.cc.o"
  "CMakeFiles/mecdns_mec.dir/registry.cc.o.d"
  "libmecdns_mec.a"
  "libmecdns_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
