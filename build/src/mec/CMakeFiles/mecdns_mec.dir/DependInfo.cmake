
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mec/cluster.cc" "src/mec/CMakeFiles/mecdns_mec.dir/cluster.cc.o" "gcc" "src/mec/CMakeFiles/mecdns_mec.dir/cluster.cc.o.d"
  "/root/repo/src/mec/ingress.cc" "src/mec/CMakeFiles/mecdns_mec.dir/ingress.cc.o" "gcc" "src/mec/CMakeFiles/mecdns_mec.dir/ingress.cc.o.d"
  "/root/repo/src/mec/orchestrator.cc" "src/mec/CMakeFiles/mecdns_mec.dir/orchestrator.cc.o" "gcc" "src/mec/CMakeFiles/mecdns_mec.dir/orchestrator.cc.o.d"
  "/root/repo/src/mec/registry.cc" "src/mec/CMakeFiles/mecdns_mec.dir/registry.cc.o" "gcc" "src/mec/CMakeFiles/mecdns_mec.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/mecdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mecdns_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
