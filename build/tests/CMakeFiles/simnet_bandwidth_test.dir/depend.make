# Empty dependencies file for simnet_bandwidth_test.
# This may be replaced when dependencies are built.
