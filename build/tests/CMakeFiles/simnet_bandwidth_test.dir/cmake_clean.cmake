file(REMOVE_RECURSE
  "CMakeFiles/simnet_bandwidth_test.dir/simnet_bandwidth_test.cc.o"
  "CMakeFiles/simnet_bandwidth_test.dir/simnet_bandwidth_test.cc.o.d"
  "simnet_bandwidth_test"
  "simnet_bandwidth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_bandwidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
