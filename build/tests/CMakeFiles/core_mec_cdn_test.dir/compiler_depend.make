# Empty compiler generated dependencies file for core_mec_cdn_test.
# This may be replaced when dependencies are built.
