file(REMOVE_RECURSE
  "CMakeFiles/core_mec_cdn_test.dir/core_mec_cdn_test.cc.o"
  "CMakeFiles/core_mec_cdn_test.dir/core_mec_cdn_test.cc.o.d"
  "core_mec_cdn_test"
  "core_mec_cdn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mec_cdn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
