# Empty dependencies file for cdn_monitor_test.
# This may be replaced when dependencies are built.
