file(REMOVE_RECURSE
  "CMakeFiles/cdn_monitor_test.dir/cdn_monitor_test.cc.o"
  "CMakeFiles/cdn_monitor_test.dir/cdn_monitor_test.cc.o.d"
  "cdn_monitor_test"
  "cdn_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
