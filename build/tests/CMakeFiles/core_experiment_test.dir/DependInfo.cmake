
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_experiment_test.cc" "tests/CMakeFiles/core_experiment_test.dir/core_experiment_test.cc.o" "gcc" "tests/CMakeFiles/core_experiment_test.dir/core_experiment_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mecdns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mecdns_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/mecdns_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/mec/CMakeFiles/mecdns_mec.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/mecdns_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/mecdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/mecdns_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mecdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
