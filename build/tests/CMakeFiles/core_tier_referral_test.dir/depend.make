# Empty dependencies file for core_tier_referral_test.
# This may be replaced when dependencies are built.
