file(REMOVE_RECURSE
  "CMakeFiles/core_tier_referral_test.dir/core_tier_referral_test.cc.o"
  "CMakeFiles/core_tier_referral_test.dir/core_tier_referral_test.cc.o.d"
  "core_tier_referral_test"
  "core_tier_referral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tier_referral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
