file(REMOVE_RECURSE
  "CMakeFiles/dns_zone_test.dir/dns_zone_test.cc.o"
  "CMakeFiles/dns_zone_test.dir/dns_zone_test.cc.o.d"
  "dns_zone_test"
  "dns_zone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_zone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
