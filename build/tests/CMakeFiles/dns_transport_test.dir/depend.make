# Empty dependencies file for dns_transport_test.
# This may be replaced when dependencies are built.
