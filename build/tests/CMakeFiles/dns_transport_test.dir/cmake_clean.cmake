file(REMOVE_RECURSE
  "CMakeFiles/dns_transport_test.dir/dns_transport_test.cc.o"
  "CMakeFiles/dns_transport_test.dir/dns_transport_test.cc.o.d"
  "dns_transport_test"
  "dns_transport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
