# Empty dependencies file for cdn_hash_coverage_test.
# This may be replaced when dependencies are built.
