file(REMOVE_RECURSE
  "CMakeFiles/cdn_hash_coverage_test.dir/cdn_hash_coverage_test.cc.o"
  "CMakeFiles/cdn_hash_coverage_test.dir/cdn_hash_coverage_test.cc.o.d"
  "cdn_hash_coverage_test"
  "cdn_hash_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_hash_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
