# Empty dependencies file for dns_truncation_test.
# This may be replaced when dependencies are built.
