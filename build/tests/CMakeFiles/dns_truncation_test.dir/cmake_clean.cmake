file(REMOVE_RECURSE
  "CMakeFiles/dns_truncation_test.dir/dns_truncation_test.cc.o"
  "CMakeFiles/dns_truncation_test.dir/dns_truncation_test.cc.o.d"
  "dns_truncation_test"
  "dns_truncation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_truncation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
