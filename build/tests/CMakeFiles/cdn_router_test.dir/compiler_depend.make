# Empty compiler generated dependencies file for cdn_router_test.
# This may be replaced when dependencies are built.
