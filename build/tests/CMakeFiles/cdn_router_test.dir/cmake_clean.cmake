file(REMOVE_RECURSE
  "CMakeFiles/cdn_router_test.dir/cdn_router_test.cc.o"
  "CMakeFiles/cdn_router_test.dir/cdn_router_test.cc.o.d"
  "cdn_router_test"
  "cdn_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
