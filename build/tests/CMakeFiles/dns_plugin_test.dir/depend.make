# Empty dependencies file for dns_plugin_test.
# This may be replaced when dependencies are built.
