file(REMOVE_RECURSE
  "CMakeFiles/dns_plugin_test.dir/dns_plugin_test.cc.o"
  "CMakeFiles/dns_plugin_test.dir/dns_plugin_test.cc.o.d"
  "dns_plugin_test"
  "dns_plugin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_plugin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
