file(REMOVE_RECURSE
  "CMakeFiles/dns_queueing_test.dir/dns_queueing_test.cc.o"
  "CMakeFiles/dns_queueing_test.dir/dns_queueing_test.cc.o.d"
  "dns_queueing_test"
  "dns_queueing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_queueing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
