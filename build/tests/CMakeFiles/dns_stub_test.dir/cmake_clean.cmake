file(REMOVE_RECURSE
  "CMakeFiles/dns_stub_test.dir/dns_stub_test.cc.o"
  "CMakeFiles/dns_stub_test.dir/dns_stub_test.cc.o.d"
  "dns_stub_test"
  "dns_stub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_stub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
