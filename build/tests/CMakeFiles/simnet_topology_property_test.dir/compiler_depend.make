# Empty compiler generated dependencies file for simnet_topology_property_test.
# This may be replaced when dependencies are built.
