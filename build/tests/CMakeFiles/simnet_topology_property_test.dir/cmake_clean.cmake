file(REMOVE_RECURSE
  "CMakeFiles/simnet_topology_property_test.dir/simnet_topology_property_test.cc.o"
  "CMakeFiles/simnet_topology_property_test.dir/simnet_topology_property_test.cc.o.d"
  "simnet_topology_property_test"
  "simnet_topology_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_topology_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
