file(REMOVE_RECURSE
  "CMakeFiles/mec_test.dir/mec_test.cc.o"
  "CMakeFiles/mec_test.dir/mec_test.cc.o.d"
  "mec_test"
  "mec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
