file(REMOVE_RECURSE
  "CMakeFiles/core_replay_test.dir/core_replay_test.cc.o"
  "CMakeFiles/core_replay_test.dir/core_replay_test.cc.o.d"
  "core_replay_test"
  "core_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
