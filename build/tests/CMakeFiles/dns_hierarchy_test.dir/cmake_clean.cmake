file(REMOVE_RECURSE
  "CMakeFiles/dns_hierarchy_test.dir/dns_hierarchy_test.cc.o"
  "CMakeFiles/dns_hierarchy_test.dir/dns_hierarchy_test.cc.o.d"
  "dns_hierarchy_test"
  "dns_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
