file(REMOVE_RECURSE
  "CMakeFiles/core_fig5_test.dir/core_fig5_test.cc.o"
  "CMakeFiles/core_fig5_test.dir/core_fig5_test.cc.o.d"
  "core_fig5_test"
  "core_fig5_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fig5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
