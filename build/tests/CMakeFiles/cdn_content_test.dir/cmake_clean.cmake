file(REMOVE_RECURSE
  "CMakeFiles/cdn_content_test.dir/cdn_content_test.cc.o"
  "CMakeFiles/cdn_content_test.dir/cdn_content_test.cc.o.d"
  "cdn_content_test"
  "cdn_content_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
