file(REMOVE_RECURSE
  "CMakeFiles/cdn_cache_server_test.dir/cdn_cache_server_test.cc.o"
  "CMakeFiles/cdn_cache_server_test.dir/cdn_cache_server_test.cc.o.d"
  "cdn_cache_server_test"
  "cdn_cache_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_cache_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
