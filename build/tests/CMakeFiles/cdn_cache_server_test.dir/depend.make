# Empty dependencies file for cdn_cache_server_test.
# This may be replaced when dependencies are built.
