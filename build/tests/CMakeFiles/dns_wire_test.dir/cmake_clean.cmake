file(REMOVE_RECURSE
  "CMakeFiles/dns_wire_test.dir/dns_wire_test.cc.o"
  "CMakeFiles/dns_wire_test.dir/dns_wire_test.cc.o.d"
  "dns_wire_test"
  "dns_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
