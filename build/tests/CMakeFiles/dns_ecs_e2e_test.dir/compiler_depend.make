# Empty compiler generated dependencies file for dns_ecs_e2e_test.
# This may be replaced when dependencies are built.
