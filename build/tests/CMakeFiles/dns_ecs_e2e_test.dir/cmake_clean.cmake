file(REMOVE_RECURSE
  "CMakeFiles/dns_ecs_e2e_test.dir/dns_ecs_e2e_test.cc.o"
  "CMakeFiles/dns_ecs_e2e_test.dir/dns_ecs_e2e_test.cc.o.d"
  "dns_ecs_e2e_test"
  "dns_ecs_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_ecs_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
