file(REMOVE_RECURSE
  "CMakeFiles/dns_resolver_test.dir/dns_resolver_test.cc.o"
  "CMakeFiles/dns_resolver_test.dir/dns_resolver_test.cc.o.d"
  "dns_resolver_test"
  "dns_resolver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_resolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
