file(REMOVE_RECURSE
  "CMakeFiles/dns_cache_test.dir/dns_cache_test.cc.o"
  "CMakeFiles/dns_cache_test.dir/dns_cache_test.cc.o.d"
  "dns_cache_test"
  "dns_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
