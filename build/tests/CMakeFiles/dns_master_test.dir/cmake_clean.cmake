file(REMOVE_RECURSE
  "CMakeFiles/dns_master_test.dir/dns_master_test.cc.o"
  "CMakeFiles/dns_master_test.dir/dns_master_test.cc.o.d"
  "dns_master_test"
  "dns_master_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
