# Empty dependencies file for dns_master_test.
# This may be replaced when dependencies are built.
