# Empty compiler generated dependencies file for bench_ablation_cdns_scope.
# This may be replaced when dependencies are built.
