# Empty compiler generated dependencies file for bench_extension_table1_at_mec.
# This may be replaced when dependencies are built.
