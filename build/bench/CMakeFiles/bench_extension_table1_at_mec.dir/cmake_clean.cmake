file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_table1_at_mec.dir/bench_extension_table1_at_mec.cc.o"
  "CMakeFiles/bench_extension_table1_at_mec.dir/bench_extension_table1_at_mec.cc.o.d"
  "bench_extension_table1_at_mec"
  "bench_extension_table1_at_mec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_table1_at_mec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
