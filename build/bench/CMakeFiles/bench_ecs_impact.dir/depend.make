# Empty dependencies file for bench_ecs_impact.
# This may be replaced when dependencies are built.
