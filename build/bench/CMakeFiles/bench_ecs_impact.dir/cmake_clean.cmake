file(REMOVE_RECURSE
  "CMakeFiles/bench_ecs_impact.dir/bench_ecs_impact.cc.o"
  "CMakeFiles/bench_ecs_impact.dir/bench_ecs_impact.cc.o.d"
  "bench_ecs_impact"
  "bench_ecs_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecs_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
