# Empty compiler generated dependencies file for bench_ablation_tier_referral.
# This may be replaced when dependencies are built.
