file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tier_referral.dir/bench_ablation_tier_referral.cc.o"
  "CMakeFiles/bench_ablation_tier_referral.dir/bench_ablation_tier_referral.cc.o.d"
  "bench_ablation_tier_referral"
  "bench_ablation_tier_referral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tier_referral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
