file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_deployments.dir/bench_fig5_deployments.cc.o"
  "CMakeFiles/bench_fig5_deployments.dir/bench_fig5_deployments.cc.o.d"
  "bench_fig5_deployments"
  "bench_fig5_deployments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
