file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ingress_fallback.dir/bench_ablation_ingress_fallback.cc.o"
  "CMakeFiles/bench_ablation_ingress_fallback.dir/bench_ablation_ingress_fallback.cc.o.d"
  "bench_ablation_ingress_fallback"
  "bench_ablation_ingress_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ingress_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
