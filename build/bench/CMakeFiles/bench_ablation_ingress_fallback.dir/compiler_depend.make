# Empty compiler generated dependencies file for bench_ablation_ingress_fallback.
# This may be replaced when dependencies are built.
