# Empty compiler generated dependencies file for bench_ablation_namespace.
# This may be replaced when dependencies are built.
