file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_namespace.dir/bench_ablation_namespace.cc.o"
  "CMakeFiles/bench_ablation_namespace.dir/bench_ablation_namespace.cc.o.d"
  "bench_ablation_namespace"
  "bench_ablation_namespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_namespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
