# Empty dependencies file for mecdns_testbed.
# This may be replaced when dependencies are built.
