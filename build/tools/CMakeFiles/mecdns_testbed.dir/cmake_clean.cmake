file(REMOVE_RECURSE
  "CMakeFiles/mecdns_testbed.dir/mecdns_testbed.cc.o"
  "CMakeFiles/mecdns_testbed.dir/mecdns_testbed.cc.o.d"
  "mecdns_testbed"
  "mecdns_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecdns_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
