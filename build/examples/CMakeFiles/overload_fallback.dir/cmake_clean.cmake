file(REMOVE_RECURSE
  "CMakeFiles/overload_fallback.dir/overload_fallback.cpp.o"
  "CMakeFiles/overload_fallback.dir/overload_fallback.cpp.o.d"
  "overload_fallback"
  "overload_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
