# Empty compiler generated dependencies file for overload_fallback.
# This may be replaced when dependencies are built.
