file(REMOVE_RECURSE
  "CMakeFiles/fig1_walkthrough.dir/fig1_walkthrough.cpp.o"
  "CMakeFiles/fig1_walkthrough.dir/fig1_walkthrough.cpp.o.d"
  "fig1_walkthrough"
  "fig1_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
