# Empty compiler generated dependencies file for mobile_handoff.
# This may be replaced when dependencies are built.
