# Empty dependencies file for arvr_latency_budget.
# This may be replaced when dependencies are built.
