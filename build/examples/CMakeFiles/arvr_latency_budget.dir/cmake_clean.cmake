file(REMOVE_RECURSE
  "CMakeFiles/arvr_latency_budget.dir/arvr_latency_budget.cpp.o"
  "CMakeFiles/arvr_latency_budget.dir/arvr_latency_budget.cpp.o.d"
  "arvr_latency_budget"
  "arvr_latency_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arvr_latency_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
