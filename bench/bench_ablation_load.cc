// Ablation A7: MEC L-DNS under load (queueing saturation).
//
// The MEC DNS is a small, edge-local service; unlike anycast cloud
// resolvers it cannot absorb arbitrary load — which is why §3 P1 pairs it
// with the orchestrator's ingress monitoring. This bench gives the MEC
// L-DNS a single worker (measured ~2.4 ms service time => capacity
// ~420 qps) and sweeps the offered load: latency rises smoothly with
// utilization and then the queue melts down — the regime the overload
// guard is designed to cut off.
#include <cstdio>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "util/args.h"

using namespace mecdns;

namespace {

struct LoadPoint {
  double offered_qps;
  double mean_ms;
  double p99_ms;
  std::size_t answered;
  std::uint64_t dropped;
};

LoadPoint run(double qps, std::uint64_t seed) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  core::Fig5Testbed testbed(config);
  testbed.site().ldns().set_service_capacity(1, /*max_queue=*/128);

  const std::size_t queries = static_cast<std::size_t>(qps * 4);  // 4 s of load
  const auto spacing = simnet::SimTime::millis(1000.0 / qps);
  const core::SeriesResult result =
      testbed.measure_name(testbed.content_name(), queries, spacing, 0);

  LoadPoint point;
  point.offered_qps = qps;
  const util::SampleSet totals = result.totals();
  point.mean_ms = totals.mean();
  point.p99_ms = totals.percentile(99);
  point.answered = totals.size();
  point.dropped = testbed.site().ldns().dropped_overflow();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_ablation_load: A7 MEC L-DNS saturation sweep");
  args.add_int("seed", 42,
               "campaign seed; each load point runs with "
               "split_mix64(seed ^ row_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const std::vector<double> loads = {50.0, 150.0, 300.0, 400.0, 500.0, 800.0};
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<LoadPoint>(
      loads.size(), [&](std::size_t index) {
        return run(loads[index], core::job_seed(campaign_seed, index));
      });

  std::printf(
      "=== A7: MEC L-DNS saturation (1 worker, ~2.4 ms service => ~420 qps "
      "capacity) ===\n");
  std::printf("%10s %10s %10s %10s %10s\n", "offered", "mean(ms)", "p99(ms)",
              "answered", "dropped");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: load %.0f/s failed: %s\n", loads[i],
                   outcomes[i].error.c_str());
      return 1;
    }
    const LoadPoint& point = outcomes[i].value;
    std::printf("%8.0f/s %10.1f %10.1f %10zu %10llu\n", point.offered_qps,
                point.mean_ms, point.p99_ms, point.answered,
                static_cast<unsigned long long>(point.dropped));
  }
  std::printf(
      "\nexpected shape: flat latency at low utilization, a queueing knee "
      "near capacity, and queue\noverflow drops beyond it — quantifying why "
      "the orchestrator must shed load above a threshold\nrather than let "
      "the MEC DNS queue unboundedly.\n");
  return 0;
}
