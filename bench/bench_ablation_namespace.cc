// Ablation A1: the split-namespace L-DNS and non-MEC traffic.
//
// §3 P1 argues the MEC DNS can answer MEC-CDN domains at the first hop
// while forwarding (or multicasting) everything else to the provider's
// L-DNS, "adding only a small overhead to CDN accesses for
// non-latency-critical content". This bench quantifies all four paths:
//
//   MEC domain   via MEC L-DNS      (the win: first-hop resolution)
//   MEC domain   via provider L-DNS (what clients get today)
//   web domain   via MEC L-DNS      (forwarded: the "small overhead")
//   web domain   via provider L-DNS (baseline for that overhead)
//
// and the multicast variant where the UE races both servers.
#include <cstdio>

#include "core/fig5.h"

using namespace mecdns;

int main() {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.provider_fallback = true;
  core::Fig5Testbed testbed(config);

  const simnet::SimTime spacing = simnet::SimTime::seconds(2);

  std::printf("=== A1: split-namespace MEC L-DNS vs provider L-DNS ===\n");
  std::printf("%-34s %10s\n", "path", "mean(ms)");

  // MEC content through the MEC L-DNS (default UE configuration).
  const double mec_via_mec =
      testbed.measure_name(testbed.content_name(), 40, spacing).totals().mean();
  std::printf("%-34s %10.1f\n", "MEC domain via MEC L-DNS", mec_via_mec);

  // MEC content through the provider path (re-target the stub).
  testbed.ue().resolver().set_server(testbed.provider_endpoint());
  const double mec_via_provider =
      testbed.measure_name(testbed.content_name(), 40, spacing).totals().mean();
  std::printf("%-34s %10.1f\n", "MEC domain via provider L-DNS",
              mec_via_provider);

  // Non-MEC web content through the provider (today's baseline).
  const double web_via_provider =
      testbed.measure_name(testbed.web_name(), 40, spacing).totals().mean();
  std::printf("%-34s %10.1f\n", "web domain via provider L-DNS",
              web_via_provider);

  // Non-MEC web content through the MEC L-DNS (forwarded upstream).
  testbed.ue().resolver().set_server(testbed.site().ldns_endpoint());
  const double web_via_mec =
      testbed.measure_name(testbed.web_name(), 40, spacing).totals().mean();
  std::printf("%-34s %10.1f\n", "web domain via MEC L-DNS (forward)",
              web_via_mec);

  // Multicast: race MEC L-DNS and provider L-DNS; first useful answer wins.
  testbed.ue().resolver().set_secondary(testbed.provider_endpoint());
  const double web_multicast =
      testbed.measure_name(testbed.web_name(), 40, spacing).totals().mean();
  const double mec_multicast =
      testbed.measure_name(testbed.content_name(), 40, spacing)
          .totals()
          .mean();
  testbed.ue().resolver().set_secondary(std::nullopt);
  std::printf("%-34s %10.1f\n", "web domain, multicast both", web_multicast);
  std::printf("%-34s %10.1f\n", "MEC domain, multicast both", mec_multicast);

  std::printf("\nMEC-domain speedup from MEC L-DNS:   %.1fx (paper: ~3.9x)\n",
              mec_via_provider / mec_via_mec);
  std::printf("web-domain overhead through MEC L-DNS: +%.1f ms (%.0f%%)\n",
              web_via_mec - web_via_provider,
              100.0 * (web_via_mec - web_via_provider) / web_via_provider);
  return 0;
}
