// Ablation A1: the split-namespace L-DNS and non-MEC traffic.
//
// §3 P1 argues the MEC DNS can answer MEC-CDN domains at the first hop
// while forwarding (or multicasting) everything else to the provider's
// L-DNS, "adding only a small overhead to CDN accesses for
// non-latency-critical content". This bench quantifies all four paths:
//
//   MEC domain   via MEC L-DNS      (the win: first-hop resolution)
//   MEC domain   via provider L-DNS (what clients get today)
//   web domain   via MEC L-DNS      (forwarded: the "small overhead")
//   web domain   via provider L-DNS (baseline for that overhead)
//
// and the multicast variant where the UE races both servers. Each path is
// one parallel-campaign job with a private testbed — the historical version
// mutated a single testbed across six sequential measurements, so every
// path's numbers (and resolver caches) depended on the paths measured
// before it.
#include <cstdio>
#include <string>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "util/args.h"

using namespace mecdns;

namespace {

struct Spec {
  std::string label;
  bool mec_domain;       ///< resolve the MEC content name (else web name)
  bool provider_server;  ///< re-target the stub at the provider L-DNS
  bool multicast;        ///< race MEC and provider L-DNS
};

double run(const Spec& spec, std::uint64_t seed) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  config.provider_fallback = true;
  core::Fig5Testbed testbed(config);
  if (spec.provider_server) {
    testbed.ue().resolver().set_server(testbed.provider_endpoint());
  }
  if (spec.multicast) {
    testbed.ue().resolver().set_secondary(testbed.provider_endpoint());
  }
  const dns::DnsName name =
      spec.mec_domain ? testbed.content_name() : testbed.web_name();
  return testbed.measure_name(name, 40, simnet::SimTime::seconds(2))
      .totals()
      .mean();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_ablation_namespace: A1 split-namespace L-DNS ablation");
  args.add_int("seed", 42,
               "campaign seed; each path runs with "
               "split_mix64(seed ^ row_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }

  const std::vector<Spec> specs = {
      {"MEC domain via MEC L-DNS", true, false, false},
      {"MEC domain via provider L-DNS", true, true, false},
      {"web domain via provider L-DNS", false, true, false},
      {"web domain via MEC L-DNS (forward)", false, false, false},
      {"web domain, multicast both", false, false, true},
      {"MEC domain, multicast both", true, false, true},
  };
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<double>(
      specs.size(), [&](std::size_t index) {
        return run(specs[index], core::job_seed(campaign_seed, index));
      });

  std::printf("=== A1: split-namespace MEC L-DNS vs provider L-DNS ===\n");
  std::printf("%-34s %10s\n", "path", "mean(ms)");
  std::vector<double> means;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: %s failed: %s\n", specs[i].label.c_str(),
                   outcomes[i].error.c_str());
      return 1;
    }
    means.push_back(outcomes[i].value);
    std::printf("%-34s %10.1f\n", specs[i].label.c_str(), outcomes[i].value);
  }

  const double mec_via_mec = means[0];
  const double mec_via_provider = means[1];
  const double web_via_provider = means[2];
  const double web_via_mec = means[3];
  std::printf("\nMEC-domain speedup from MEC L-DNS:   %.1fx (paper: ~3.9x)\n",
              mec_via_provider / mec_via_mec);
  std::printf("web-domain overhead through MEC L-DNS: +%.1f ms (%.0f%%)\n",
              web_via_mec - web_via_provider,
              100.0 * (web_via_mec - web_via_provider) / web_via_provider);
  return 0;
}
