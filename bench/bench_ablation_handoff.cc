// Ablation A4: DNS re-targeting on cellular handoff.
//
// §3 P1: switching the UE's target DNS to the new base station's MEC DNS
// "can be performed ... as part of the cellular hand-off process". This
// bench moves a UE from cell A to cell B and compares:
//   retarget — the handoff also re-points the stub at cell B's MEC L-DNS
//   sticky   — the stub keeps using cell A's L-DNS across the inter-site
//              backhaul (what happens without the paper's integration)
// measuring DNS latency and whether answers stay on the local site's caches.
#include <cstdio>
#include <memory>

#include "core/experiment.h"
#include "core/mec_cdn.h"
#include "core/parallel.h"
#include "ran/handoff.h"
#include "ran/profiles.h"
#include "ran/segment.h"
#include "ran/ue.h"
#include "util/args.h"

using namespace mecdns;

namespace {

struct TwoCellWorld {
  simnet::Simulator sim;
  std::unique_ptr<simnet::Network> net;
  std::unique_ptr<ran::RanSegment> cell_a;
  std::unique_ptr<ran::RanSegment> cell_b;
  std::unique_ptr<core::MecCdnSite> site_a;
  std::unique_ptr<core::MecCdnSite> site_b;
  std::unique_ptr<ran::UserEquipment> ue;
  std::unique_ptr<ran::HandoffManager> handoff;

  explicit TwoCellWorld(std::uint64_t seed) {
    net = std::make_unique<simnet::Network>(sim, util::Rng(seed));
    const simnet::NodeId backbone = net->add_node(
        "backbone", simnet::Ipv4Address::must_parse("192.0.2.1"));

    const auto make_cell = [&](const std::string& name,
                               const std::string& pgw_ip,
                               const std::string& prefix)
        -> std::pair<std::unique_ptr<ran::RanSegment>,
                     std::unique_ptr<core::MecCdnSite>> {
      ran::RanSegment::Config rc;
      rc.name = name;
      rc.enb_addr = simnet::Ipv4Address::must_parse(prefix + ".0.1");
      rc.sgw_addr = simnet::Ipv4Address::must_parse(prefix + ".0.2");
      rc.pgw_addr = simnet::Ipv4Address::must_parse(pgw_ip);
      rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
      rc.access = ran::lte();
      auto segment = std::make_unique<ran::RanSegment>(*net, rc);
      net->add_link(segment->pgw(), backbone, ran::wan_link(4.0));

      core::MecCdnSite::Config sc;
      sc.orchestrator.cluster.name = name + "-mec";
      // Distinct node/service CIDRs per site.
      sc.orchestrator.cluster.node_cidr =
          simnet::Cidr::must_parse(prefix + ".64.0/24");
      sc.orchestrator.cluster.service_cidr =
          simnet::Cidr::must_parse(prefix + ".128.0/20");
      sc.answer_ttl = 0;
      auto site = std::make_unique<core::MecCdnSite>(*net, sc);
      net->add_link(segment->pgw(), site->orchestrator().cluster().gateway(),
                    simnet::LatencyModel::constant(
                        simnet::SimTime::millis(0.5)));
      return {std::move(segment), std::move(site)};
    };

    std::tie(cell_a, site_a) = make_cell("cell-a", "203.0.113.1", "10.101");
    std::tie(cell_b, site_b) = make_cell("cell-b", "203.0.114.1", "10.102");
    // Inter-site backhaul (the sticky path rides this).
    net->add_link(cell_a->pgw(), cell_b->pgw(), ran::wan_link(8.0));

    cdn::ContentCatalog catalog;
    catalog.add_series(
        dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"), "seg", 8,
        1 << 20);
    site_a->add_delivery_service("demo1", catalog);
    site_b->add_delivery_service("demo1", catalog);

    ue = std::make_unique<ran::UserEquipment>(
        *net, *cell_a, "ue", simnet::Ipv4Address::must_parse("10.45.0.2"),
        site_a->ldns_endpoint());
    // Pre-create the air link to cell B (down until handoff).
    const simnet::LinkId link_b = net->add_link(
        ue->node(), cell_b->enb(), ran::lte().uplink, ran::lte().downlink);
    net->set_link_up(link_b, false);

    handoff = std::make_unique<ran::HandoffManager>(*net, *ue);
    handoff->add_cell(ran::HandoffManager::Cell{
        "cell-a", cell_a.get(), cell_a->ue_link(ue->node()),
        site_a->ldns_endpoint()});
    handoff->add_cell(ran::HandoffManager::Cell{
        "cell-b", cell_b.get(), link_b, site_b->ldns_endpoint()});
    handoff->attach(0);
  }
};

struct Phase {
  double mean_ms;
  double local_share;  ///< answers on the *current* cell's caches
};

Phase measure(TwoCellWorld& world, core::MecCdnSite& local_site) {
  core::QueryRunner runner(*world.net, world.ue->resolver(), nullptr);
  core::QueryRunner::Options options;
  options.queries = 30;
  options.warmup = 1;
  options.spacing = simnet::SimTime::millis(500);
  const core::SeriesResult result = runner.run(
      dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
      dns::RecordType::kA, options);
  Phase phase;
  phase.mean_ms = result.totals().mean();
  phase.local_share = result.answer_share([&](simnet::Ipv4Address a) {
    for (std::size_t i = 0; i < local_site.site_config().edge_caches; ++i) {
      if (local_site.cache_address(i) == a) return true;
    }
    return false;
  });
  return phase;
}

/// One campaign job: a private two-cell world running the before-handoff
/// phase and then the after-handoff phase with or without DNS re-targeting.
struct HandoffResult {
  Phase before;
  Phase after;
};

HandoffResult run_world(bool retarget, std::uint64_t seed) {
  TwoCellWorld world(seed);
  HandoffResult result;
  result.before = measure(world, *world.site_a);
  world.handoff->attach(1, retarget);
  result.after = measure(world, *world.site_b);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_ablation_handoff: A4 DNS re-targeting on cellular handoff");
  args.add_int("seed", 11,
               "campaign seed; each world runs with "
               "split_mix64(seed ^ row_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<HandoffResult>(
      2, [&](std::size_t index) {
        return run_world(index == 0, core::job_seed(campaign_seed, index));
      });
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: world %zu failed: %s\n", i,
                   outcomes[i].error.c_str());
      return 1;
    }
  }

  std::printf("=== A4: DNS re-target on handoff vs sticky L-DNS ===\n");
  std::printf("%-40s %10s %14s\n", "phase", "mean(ms)", "local answers");
  const Phase& before = outcomes[0].value.before;
  std::printf("%-40s %10.1f %13.0f%%\n", "cell A, MEC L-DNS A",
              before.mean_ms, 100 * before.local_share);
  const Phase& retarget = outcomes[0].value.after;
  std::printf("%-40s %10.1f %13.0f%%\n",
              "cell B after handoff, re-targeted to B", retarget.mean_ms,
              100 * retarget.local_share);
  const Phase& sticky = outcomes[1].value.after;
  std::printf("%-40s %10.1f %13.0f%%\n",
              "cell B after handoff, sticky L-DNS A", sticky.mean_ms,
              100 * sticky.local_share);
  std::printf(
      "\nexpected shape: re-targeting keeps first-hop latency and 100%% "
      "local cache answers;\nthe sticky resolver pays the inter-site "
      "backhaul and is served by the old site's caches\n");
  return 0;
}
