// bench_throughput — queries/sec and per-query hot-path cost of the Figure 5
// deployments under load from 10^5+ simulated UEs.
//
// A workload::LoadGenerator drives every UE's Poisson arrivals through the
// testbed's full resolution stack while the obs/perf counter layer (plus
// the counting allocator linked into this binary) accounts what each query
// costs: allocations, wire-codec invocations, simulator events, and the
// event-queue high-water mark. Output splits by determinism:
//
//   --json-out BENCH_throughput.json   deterministic metrics only —
//       byte-identical for any --workers value, diffable with
//       `mecdns_report --diff` as a perf regression gate;
//   --wall-out BENCH_throughput_wall.json   wall-clock throughput
//       (queries/sec, events/sec of real time) — machine-dependent,
//       reported for humans, never byte-compared;
//   --metrics-out metrics.json         full registries, names prefixed per
//       deployment slug.
#include <cstdio>
#include <string>
#include <vector>

#include "core/throughput.h"
#include "obs/metrics.h"
#include "obs/perf.h"
#include "util/args.h"
#include "util/strings.h"

using namespace mecdns;

namespace {

/// Copies `src` into `dst` with every metric name prefixed by "<name>.".
void merge_prefixed(obs::Registry& dst, const std::string& name,
                    const obs::Registry& src) {
  for (const auto& [key, value] : src.counters()) {
    dst.add(name + "." + key, value);
  }
  for (const auto& [key, value] : src.gauges()) {
    dst.set_gauge(name + "." + key, value);
  }
  for (const auto& [key, histogram] : src.histograms()) {
    dst.histogram(name + "." + key).merge(histogram);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_throughput: load-generator throughput and per-query cost "
      "across fig5 deployments");
  args.add_string("deployments", "mec-mec,provider",
                  "comma-separated deployment slugs (mec-mec, mec-lan, "
                  "mec-wan, provider, google, cloudflare) or 'all'");
  args.add_int("ues", 100000, "simulated UE population per deployment");
  args.add_double("rate-hz", 0.02,
                  "per-UE Poisson arrival rate (queries per sim second)");
  args.add_double("duration-s", 15.0, "load-generation window, sim seconds");
  args.add_bool("closed-loop", false,
                "closed-loop arrivals (think time between completions) "
                "instead of open-loop Poisson");
  args.add_double("think-s", 1.0, "closed-loop mean think time, seconds");
  args.add_int("warmup-queries", 5,
               "cache-priming queries before the measured window");
  args.add_int("seed", 42,
               "campaign seed; each deployment runs with "
               "split_mix64(seed ^ deployment_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); --json-out is byte-identical for any value");
  args.add_bool("journal", false,
                "attach a flight-recorder journal to every hot-path "
                "component (steady-state records nothing; used to verify "
                "the allocs/query ceiling with journaling armed)");
  args.add_string("json-out", "BENCH_throughput.json",
                  "deterministic summary JSON ('' disables)");
  args.add_string("wall-out", "",
                  "wall-clock throughput JSON (machine-dependent; "
                  "'' disables)");
  args.add_string("metrics-out", "",
                  "combined metrics JSON, names prefixed per deployment");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }

  core::ThroughputConfig config;
  const std::string spec = args.get_string("deployments");
  if (spec == "all") {
    config.deployments = core::all_fig5_deployments();
  } else {
    for (const std::string& part : util::split(spec, ',')) {
      const std::string slug = util::trim(part);
      if (slug.empty()) continue;
      core::Fig5Deployment deployment;
      if (!core::fig5_from_slug(slug, deployment)) {
        std::fprintf(stderr, "error: unknown deployment '%s'\n",
                     slug.c_str());
        return 2;
      }
      config.deployments.push_back(deployment);
    }
  }
  if (config.deployments.empty()) {
    std::fprintf(stderr, "error: no deployments selected\n");
    return 2;
  }
  config.ues = static_cast<std::uint32_t>(args.get_int("ues"));
  config.rate_hz = args.get_double("rate-hz");
  config.duration_s = args.get_double("duration-s");
  config.closed_loop = args.get_bool("closed-loop");
  config.think_s = args.get_double("think-s");
  config.warmup_queries =
      static_cast<std::size_t>(args.get_int("warmup-queries"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.workers = core::resolve_workers(args.get_int("workers"));
  config.journal = args.get_bool("journal");

  if (!obs::alloc_counting_active()) {
    std::fprintf(stderr,
                 "warning: counting allocator not linked; allocs_per_query "
                 "will be absent from the output\n");
  }

  const auto outcomes = core::run_throughput(config);

  std::vector<core::ThroughputResult> rows;
  obs::Registry combined;
  const bool want_metrics = !args.get_string("metrics-out").empty();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: deployment %s failed: %s\n",
                   core::fig5_slug(config.deployments[i]).c_str(),
                   outcomes[i].error.c_str());
      return 1;
    }
    rows.push_back(outcomes[i].value.result);
    if (want_metrics) {
      merge_prefixed(combined, rows.back().scenario,
                     outcomes[i].value.metrics);
    }
  }

  std::printf("=== throughput: %u UEs x %s qps, %s s window ===\n",
              config.ues, util::fmt_fixed(config.rate_hz, 3).c_str(),
              util::fmt_fixed(config.duration_s, 1).c_str());
  std::printf("%-12s %9s %9s %8s %8s %9s %8s %8s %12s\n", "deployment",
              "queries", "qps_sim", "ev/q", "alloc/q", "wireB/q", "p50",
              "p99", "qps_wall");
  for (const core::ThroughputResult& r : rows) {
    std::printf("%-12s %9llu %9.1f %8.2f ", r.scenario.c_str(),
                static_cast<unsigned long long>(r.queries), r.qps_sim,
                r.events_per_query);
    if (r.alloc_counted) {
      std::printf("%8.1f ", r.allocs_per_query);
    } else {
      std::printf("%8s ", "-");
    }
    std::printf("%9.1f %8.3f %8.3f %12.0f\n", r.wire_bytes_per_query,
                r.p50_ms, r.p99_ms, r.qps_wall);
  }

  const std::string json_out = args.get_string("json-out");
  if (!json_out.empty()) {
    if (!obs::write_text_file(json_out,
                              core::throughput_json(rows, config.seed))) {
      std::fprintf(stderr, "error: failed to write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu scenarios to %s\n", rows.size(),
                 json_out.c_str());
  }
  const std::string wall_out = args.get_string("wall-out");
  if (!wall_out.empty()) {
    if (!obs::write_text_file(
            wall_out, core::throughput_wall_json(rows, config.workers,
                                                 config.seed))) {
      std::fprintf(stderr, "error: failed to write %s\n", wall_out.c_str());
      return 1;
    }
  }
  if (want_metrics) {
    if (!combined.write_json(args.get_string("metrics-out"))) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   args.get_string("metrics-out").c_str());
      return 1;
    }
  }
  return 0;
}
