// Ablation A3: C-DNS scope and cache-selection accuracy.
//
// §3 P2: "By placing a C-DNS at MEC, it can have a scope limited only to
// the cache server instances at the edge location. As such, we allow it to
// find the right cache instance ... more quickly, because the content
// server is implicitly available and there are (likely) fewer cache servers
// to be considered." A wide-scope router must instead geo-locate the
// resolver with an imperfect GeoIP database (§1: "limited accuracy").
//
// This bench compares an edge-scoped router (coverage zone, 1 group)
// against a global router (N groups, GeoIP fallback with a configurable
// mislocation rate): selection accuracy = share of answers in the client's
// true nearest group.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cdn/traffic_router.h"
#include "core/parallel.h"
#include "dns/stub.h"
#include "ran/profiles.h"
#include "util/args.h"

using namespace mecdns;

namespace {

struct Outcome {
  double accuracy;  ///< answers routed to the true nearest group
  double mean_ms;   ///< lookup latency
};

Outcome run(std::size_t groups, std::size_t caches_per_group,
            double mislocate_probability, bool use_coverage,
            std::uint64_t seed) {
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(seed));
  const auto client_addr = simnet::Ipv4Address::must_parse("203.0.113.10");
  const auto router_addr = simnet::Ipv4Address::must_parse("198.51.100.53");
  const simnet::NodeId client = net.add_node("client", client_addr);
  const simnet::NodeId router_node = net.add_node("router", router_addr);
  net.add_link(client, router_node, ran::lan_link());

  cdn::TrafficRouter::Config config;
  config.cdn_domain = dns::DnsName::must_parse("cdn.test");
  config.answer_ttl = 0;
  cdn::TrafficRouter router(net, router_node, "router",
                            simnet::LatencyModel::constant(
                                simnet::SimTime::millis(1.0)),
                            config, router_addr);

  // Group g sits at (100*g, 0) km; the client is at the origin, so group 0
  // is the true nearest. Each group's caches get addresses 10.g.0.x.
  cdn::DeliveryService service;
  service.id = "video";
  service.domain = dns::DnsName::must_parse("video.cdn.test");
  for (std::size_t g = 0; g < groups; ++g) {
    const std::string group = "group-" + std::to_string(g);
    service.cache_groups.push_back(group);
    for (std::size_t c = 0; c < caches_per_group; ++c) {
      router.add_cache(group, cdn::CacheInfo{
          group + "-cache-" + std::to_string(c),
          simnet::Ipv4Address(static_cast<std::uint8_t>(10),
                              static_cast<std::uint8_t>(g), 0,
                              static_cast<std::uint8_t>(c + 1)),
          true});
    }
    // group_locations drives the geo fallback's distance choice.
    router.set_group_location(group,
                              cdn::GeoPoint{100.0 * static_cast<double>(g),
                                            0.0});
  }
  router.add_delivery_service(service);

  if (use_coverage) {
    router.coverage().add(simnet::Cidr(client_addr, 24), "group-0");
  } else {
    cdn::GeoIpDatabase db(cdn::GeoAccuracy{mislocate_probability, 0.0}, 7);
    db.add(simnet::Cidr(client_addr, 24), cdn::GeoPoint{0.0, 0.0}, "client");
    for (std::size_t g = 1; g < groups; ++g) {
      // Other database rows a mislocation can land on.
      db.add(simnet::Cidr(simnet::Ipv4Address(
                              static_cast<std::uint8_t>(20 + g), 0, 0, 0),
                          8),
             cdn::GeoPoint{100.0 * static_cast<double>(g), 0.0},
             "region-" + std::to_string(g));
    }
    router.geo() = std::move(db);
  }

  dns::StubResolver stub(net, client,
                         simnet::Endpoint{router_addr, dns::kDnsPort});
  const dns::DnsName qname = dns::DnsName::must_parse("video.cdn.test");

  std::size_t correct = 0;
  std::size_t total = 0;
  double latency_sum = 0.0;
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(sim.now() + simnet::SimTime::millis(50.0 * (i + 1)),
                    [&stub, &qname, &correct, &total, &latency_sum] {
                      stub.resolve(qname, dns::RecordType::kA,
                                   [&](const dns::StubResult& result) {
                                     if (!result.ok ||
                                         !result.address.has_value()) {
                                       return;
                                     }
                                     ++total;
                                     latency_sum +=
                                         result.latency.to_millis();
                                     // group-0 caches live in 10.0.0.0/16.
                                     if ((result.address->value() >> 16) ==
                                         (10u << 8)) {
                                       ++correct;
                                     }
                                   });
                    });
  }
  sim.run();
  Outcome outcome;
  outcome.accuracy =
      total == 0 ? 0.0 : static_cast<double>(correct) / total;
  outcome.mean_ms = total == 0 ? 0.0 : latency_sum / total;
  return outcome;
}

/// One row of the sweep: a configuration plus its printed label.
struct Spec {
  std::string label;
  std::size_t groups;
  double mislocate;
  bool use_coverage;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_ablation_cdns_scope: A3 C-DNS scope ablation");
  args.add_int("seed", 99,
               "campaign seed; each configuration runs with "
               "split_mix64(seed ^ row_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }

  std::vector<Spec> specs;
  specs.push_back(
      Spec{"edge-scoped (coverage zone, 1 group x 4)", 1, 0.0, true});
  for (const double miss : {0.0, 0.1, 0.2, 0.4}) {
    for (const std::size_t groups : {4ul, 16ul, 64ul}) {
      char label[80];
      std::snprintf(label, sizeof(label),
                    "global (GeoIP %.0f%% mislocation, %zu groups)",
                    miss * 100, groups);
      specs.push_back(Spec{label, groups, miss, false});
    }
  }

  // Each row is one campaign job with a private simulator and derived seed,
  // so no row's answer mix depends on the rows before it.
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<Outcome>(
      specs.size(), [&](std::size_t index) {
        const Spec& spec = specs[index];
        return run(spec.groups, 4, spec.mislocate, spec.use_coverage,
                   core::job_seed(campaign_seed, index));
      });

  std::printf("=== A3: C-DNS scope — edge coverage zone vs global GeoIP ===\n");
  std::printf("%-44s %10s %10s\n", "configuration", "accuracy", "mean(ms)");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: %s failed: %s\n", specs[i].label.c_str(),
                   outcomes[i].error.c_str());
      return 1;
    }
    const Outcome& outcome = outcomes[i].value;
    std::printf("%-44s %9.0f%% %10.2f\n", specs[i].label.c_str(),
                100 * outcome.accuracy, outcome.mean_ms);
  }
  std::printf(
      "\nexpected shape: the edge-scoped router is always correct; global "
      "GeoIP routing degrades\nwith database error, mis-routing clients to "
      "distant cache groups\n");
  return 0;
}
