// Fault availability: end-to-end content availability under injected
// faults, with and without the failure-handling machinery.
//
// For every scenario in core::fault_scenario_names() this bench runs the
// Fig. 5 testbed twice through the same fault window:
//
//   fragile  the paper-measurement configuration — per-query routing, no
//            retransmission, no fallback servers, no serve-stale, no
//            health monitor.
//   robust   the failure-handling stack on — UE retry with exponential
//            backoff and a provider fallback server, short-TTL answer
//            caching with RFC 8767 serve-stale, C-DNS->provider forward
//            failover, a TrafficMonitor draining dead caches, and an
//            orchestrator LdnsFailover that re-targets the UE's resolver
//            when the MEC L-DNS dies.
//
// Each request is a full resolve-and-fetch (DNS lookup + content GET): an
// answer pointing at a dead cache counts as a failure, which is what makes
// cache-level faults measurable. The JSON reports success rate, latency
// percentiles and time-to-recover per (scenario, mode).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cdn/content.h"
#include "cdn/traffic_monitor.h"
#include "chaos/controller.h"
#include "core/fault_scenarios.h"
#include "core/fig5.h"
#include "core/parallel.h"
#include "mec/failover.h"
#include "obs/incident.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "util/args.h"
#include "util/stats.h"

using namespace mecdns;

namespace {

struct Knobs {
  std::size_t requests = 110;
  simnet::SimTime spacing = simnet::SimTime::millis(500);
  simnet::SimTime fault_start = simnet::SimTime::seconds(15);
  simnet::SimTime fault_end = simnet::SimTime::seconds(30);
  std::uint64_t seed = 42;
};

struct RunResult {
  std::size_t requests = 0;
  std::size_t ok = 0;
  double success_rate = 0.0;
  util::Summary latency;  ///< successful requests, DNS + fetch, ms
  /// First success after the last failure, relative to fault start; 0 =
  /// no failures at all, -1 = never recovered within the run.
  double time_to_recover_ms = 0.0;
  std::size_t window_failures = 0;  ///< failures sent inside the window
  std::uint64_t ue_retransmissions = 0;
  std::uint64_t ue_failovers = 0;
  std::uint64_t ue_servfails = 0;
  std::uint64_t ue_timeouts = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t fetch_retries = 0;
  std::uint64_t forward_failovers = 0;
  std::uint64_t monitor_transitions = 0;
  std::size_t ldns_switches = 0;
  std::size_t injections = 0;
  obs::SloResult slo;  ///< fetch-success SLO over 500 ms sim-time windows
};

struct Sample {
  simnet::SimTime sent;
  bool ok = false;
  double total_ms = 0.0;
  std::string error;
};

/// The provider L-DNS address is fixed by the testbed (10.201.0.53), so a
/// fallback-server list can be configured before the testbed is built.
simnet::Endpoint provider_endpoint() {
  return simnet::Endpoint{simnet::Ipv4Address::must_parse("10.201.0.53"),
                          dns::kDnsPort};
}

/// "series.json" + "node-down/robust" -> "series.node-down.robust.json".
std::string with_slug(const std::string& path, std::string name) {
  for (char& c : name) {
    if (c == '/') c = '.';
  }
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

/// One (scenario, mode) campaign job: the availability numbers plus the
/// serialized time series (written to disk by the caller, in job order).
struct JobResult {
  RunResult r;
  std::string series_json;
  std::string series_name;
  std::string journal_json;    ///< flight-recorder dump, when requested
  std::string incidents_json;  ///< one BENCH_incidents scenario row
};

JobResult run_scenario(const std::string& name, bool robust,
                       std::uint64_t seed, const Knobs& k, bool want_series,
                       bool want_incidents, double slo_target) {
  core::Fig5Testbed::Config config;
  // The WAN-loss scenario only bites when lookups cross the WAN, so it
  // runs the "MEC L-DNS w/ WAN C-DNS" deployment; everything else runs the
  // paper's proposal with both DNS stages in the MEC.
  config.deployment = name == "wan-loss-burst"
                          ? core::Fig5Deployment::kMecLdnsWanCdns
                          : core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  // Both modes get the identical topology (provider L-DNS built); only the
  // handling knobs differ, so the fault exposure is the same.
  config.provider_fallback = true;
  if (robust) {
    config.answer_ttl = 4;  // short TTL: cacheable, bounds dead answers
    config.serve_stale = true;
    config.cdns_fallback_to_provider = true;
    config.ue_dns_options.max_retries = 1;
    config.ue_dns_options.backoff_factor = 2.0;
    config.ue_dns_options.max_backoff = simnet::SimTime::seconds(8);
    config.ue_dns_options.fallback_servers = {provider_endpoint()};
  }
  core::Fig5Testbed testbed(config);
  simnet::Network& net = testbed.network();
  simnet::Simulator& sim = testbed.simulator();
  if (robust) {
    // App-layer resilience: a failed fetch re-resolves once, picking up
    // the drained routing / expired cache entry.
    testbed.ue().set_fetch_retries(2);
    // A fully drained edge C-DNS answers with a parent-tier referral
    // (CNAME into cdn-parent.test); the UE must chase it.
    testbed.ue().resolver().set_chase_cnames(true);
  }

  const simnet::SimTime t0 = net.now();
  const simnet::SimTime fault_start = t0 + k.fault_start;
  const simnet::SimTime fault_end = t0 + k.fault_end;
  const simnet::SimTime horizon =
      t0 + k.spacing * static_cast<std::int64_t>(k.requests + 1) +
      simnet::SimTime::seconds(20);

  // Arm the fault. The C-DNS brownout gets a delay above the transport
  // timeout so a browned-out router is indistinguishable from a dead one
  // at the client — the case failover has to win.
  core::FaultScenario scenario =
      name == "cdns-brownout"
          ? core::make_cdns_brownout(testbed, fault_start, fault_end,
                                     simnet::SimTime::millis(2500))
          : core::make_fault_scenario(name, testbed, fault_start, fault_end);
  const std::string run_name = name + (robust ? "/robust" : "/fragile");
  chaos::ChaosController controller(net, run_name);
  // Per-window fetch counters; injections land as annotations on the same
  // sim-time axis, so the SLO verdicts line up with the fault window.
  obs::TimeSeries timeseries(sim, simnet::SimTime::millis(500));
  controller.set_timeseries(&timeseries);
  // Flight recorder: fault edges from the controller, reactions from every
  // component that can fire in this bench (transport retargets, serve-stale
  // entry, guard transitions, parent referrals; monitor drains and L-DNS
  // switches attach below once the robust extras exist).
  obs::Journal journal;
  if (want_incidents) {
    controller.set_journal(&journal);
    testbed.ue().resolver().transport().set_journal(&journal);
    testbed.site().public_dns_cache()->set_journal(&journal);
    if (auto* guard = testbed.site().overload_guard()) {
      guard->set_journal(&journal);
    }
    if (auto* router = testbed.site().router()) {
      router->set_journal(&journal);
    }
    if (auto* forward = testbed.site().cdn_forward()) {
      forward->set_journal(&journal);
    }
  }
  controller.arm(scenario.schedule);

  // Robust extras that live beside the testbed rather than inside it: the
  // cache-health monitor and the orchestrator's L-DNS health-checker.
  std::unique_ptr<cdn::TrafficMonitor> monitor;
  std::unique_ptr<mec::LdnsFailover> ldns_failover;
  if (robust) {
    // Probes originate at the cluster gateway — the orchestrator's vantage.
    // (The P-GW would NAT-drop probe replies: its downlink path discards
    // packets to the public address with no translation entry.)
    const simnet::NodeId vantage =
        testbed.site().orchestrator().cluster().gateway();
    cdn::TrafficMonitor::Config mc;
    mc.rounds = static_cast<std::size_t>(
        (horizon - t0).to_millis() / mc.probe_interval.to_millis());
    monitor = std::make_unique<cdn::TrafficMonitor>(
        net, vantage, testbed.active_router(), mc);
    cdn::Url probe;
    probe.host = testbed.content_name();
    probe.path = "/index.m3u8";
    const auto caches = testbed.site().caches();
    for (std::size_t i = 0; i < caches.size(); ++i) {
      monitor->watch("mec-edge", caches[i]->name(),
                     simnet::Endpoint{testbed.site().cache_address(i),
                                      cdn::kContentPort},
                     probe);
    }
    if (want_incidents) monitor->set_journal(&journal);
    monitor->start();

    mec::LdnsFailover::Config fc;
    fc.primary = testbed.site().ldns_endpoint();
    fc.fallback = testbed.provider_endpoint();
    ldns_failover = std::make_unique<mec::LdnsFailover>(net, vantage, fc);
    ldns_failover->set_on_switch(
        [&testbed](const simnet::Endpoint& target, bool /*to_fallback*/) {
          testbed.ue().resolver().set_server(target);
        });
    if (want_incidents) ldns_failover->set_journal(&journal);
    ldns_failover->start(static_cast<std::size_t>(
        (horizon - t0).to_millis() / fc.probe_interval.to_millis()));
  }

  // The request stream: one resolve-and-fetch every spacing, spanning the
  // fault window. Samples are indexed by send slot so recovery can be
  // measured in send order even though completions arrive out of order.
  std::vector<Sample> samples(k.requests);
  for (std::size_t i = 0; i < k.requests; ++i) {
    const simnet::SimTime at =
        t0 + k.spacing * static_cast<std::int64_t>(i + 1);
    samples[i].sent = at;
    sim.schedule_at(at, [&testbed, &samples, &timeseries, i] {
      cdn::Url url;
      url.host = testbed.content_name();
      url.path = "/segment000" + std::to_string(i % 8);
      testbed.ue().resolve_and_fetch(
          url, [&samples, &timeseries,
                i](const ran::UserEquipment::FetchOutcome& outcome) {
            samples[i].ok = outcome.ok;
            samples[i].total_ms = outcome.total.to_millis();
            samples[i].error = outcome.error;
            timeseries.add("fetch.requests");
            if (outcome.ok) {
              timeseries.observe("fetch.total_ms", outcome.total.to_millis());
            } else {
              timeseries.add("fetch.failures");
            }
          });
    });
  }
  sim.run();

  RunResult result;
  result.requests = k.requests;
  util::SampleSet latencies;
  simnet::SimTime last_failure = simnet::SimTime::zero();
  bool any_failure = false;
  for (const Sample& s : samples) {
    if (s.ok) {
      ++result.ok;
      latencies.add(s.total_ms);
    } else {
      any_failure = true;
      if (s.sent > last_failure) last_failure = s.sent;
      if (s.sent >= fault_start && s.sent < fault_end) {
        ++result.window_failures;
      }
    }
  }
  for (const Sample& s : samples) {
    if (!s.ok && std::getenv("FAULT_DEBUG") != nullptr) {
      std::fprintf(stderr, "FAIL at %lldms: %s\n",
                   static_cast<long long>(s.sent.to_millis()),
                   s.error.c_str());
    }
  }
  result.success_rate = k.requests == 0
                            ? 0.0
                            : static_cast<double>(result.ok) /
                                  static_cast<double>(k.requests);
  result.latency = latencies.summarize();
  if (!any_failure) {
    result.time_to_recover_ms = 0.0;
  } else {
    result.time_to_recover_ms = -1.0;
    for (const Sample& s : samples) {
      if (s.ok && s.sent > last_failure) {
        const double ttr = (s.sent - fault_start).to_millis();
        result.time_to_recover_ms = ttr < 0.0 ? 0.0 : ttr;
        break;
      }
    }
  }

  dns::DnsTransport& ue_transport = testbed.ue().resolver().transport();
  result.ue_retransmissions = ue_transport.retransmissions();
  result.ue_failovers = ue_transport.failovers();
  result.ue_servfails = ue_transport.servfails();
  result.ue_timeouts = ue_transport.timeouts();
  result.stale_served = testbed.site().public_dns_cache()->stats().stale_hits;
  result.fetch_retries = testbed.ue().fetch_retries_used();
  if (testbed.site().cdn_forward() != nullptr) {
    result.forward_failovers = testbed.site().cdn_forward()->failovers();
  }
  if (monitor != nullptr) result.monitor_transitions = monitor->transitions();
  if (ldns_failover != nullptr) {
    result.ldns_switches = ldns_failover->switches().size();
  }
  result.injections = controller.injected();
  result.slo = obs::evaluate_slo(
      obs::success_slo("fetch.requests", "fetch.failures", slo_target),
      timeseries);
  JobResult job;
  if (want_incidents) {
    obs::append_slo_journal(result.slo, journal);
    const obs::IncidentReport report = obs::correlate_incidents(journal);
    job.journal_json = journal.to_json();
    job.incidents_json = "{\"scenario\": \"" + name + "\", \"mode\": \"" +
                         (robust ? "robust" : "fragile") + "\", " +
                         obs::incident_report_json(report) + "}";
  }
  job.r = std::move(result);
  if (want_series) {
    job.series_json = timeseries.to_json();
    job.series_name = run_name;
  }
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_fault_availability: availability under injected faults, "
      "fragile vs robust");
  args.add_string("json-out", "BENCH_fault_availability.json",
                  "write per-(scenario,mode) summaries as JSON ('' disables)");
  args.add_string("scenario", "all",
                  "one scenario name, or 'all' for the whole catalog");
  args.add_int("requests", 110, "resolve-and-fetch requests per run");
  args.add_int("spacing-ms", 500, "gap between requests");
  args.add_int("fault-start-ms", 15000, "fault window start");
  args.add_int("fault-end-ms", 30000, "fault window end (restart/heal time)");
  args.add_int("seed", 42, "testbed RNG seed");
  args.add_string("timeseries-out", "",
                  "per-run windowed-metrics JSON with chaos annotations "
                  "(scenario/mode slug is inserted before the extension)");
  args.add_string("journal-out", "",
                  "per-run flight-recorder journal JSON (scenario/mode slug "
                  "is inserted before the extension; '' disables)");
  args.add_string("incidents-out", "",
                  "correlated incident forensics (BENCH_incidents.json "
                  "shape: MTTD/MTTR per scenario; '' disables)");
  args.add_double("slo-target", 0.99,
                  "per-window fetch success ratio the SLO requires");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  args.add_string("scaling-out", "",
                  "also run the whole matrix once per worker count in "
                  "--scaling-workers, timing each, and write the speedup "
                  "record as JSON ('' disables)");
  args.add_string("scaling-workers", "1,2,4,8",
                  "comma-separated worker counts for --scaling-out");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }

  Knobs knobs;
  knobs.requests = static_cast<std::size_t>(args.get_int("requests"));
  knobs.spacing = simnet::SimTime::millis(args.get_int("spacing-ms"));
  knobs.fault_start = simnet::SimTime::millis(args.get_int("fault-start-ms"));
  knobs.fault_end = simnet::SimTime::millis(args.get_int("fault-end-ms"));
  knobs.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::vector<std::string> scenarios;
  const std::string pick = args.get_string("scenario");
  if (pick == "all") {
    scenarios = core::fault_scenario_names();
  } else {
    scenarios.push_back(pick);
  }

  std::printf("=== Fault availability: %zu requests, fault window "
              "[%lld, %lld) ms ===\n",
              knobs.requests,
              static_cast<long long>(knobs.fault_start.to_millis()),
              static_cast<long long>(knobs.fault_end.to_millis()));
  std::printf("%-22s %-8s %8s %9s %9s %9s %11s %s\n", "scenario", "mode",
              "ok", "success", "p50(ms)", "p99(ms)", "recover(ms)", "notes");

  struct Row {
    std::string scenario;
    std::string mode;
    RunResult r;
  };
  // The campaign grid: (scenario × mode), one private simulation per job.
  // Fragile and robust runs of the same scenario share a seed derived from
  // the scenario index — split_mix64(seed ^ scenario_index) — so both modes
  // see the identical topology and fault exposure, while no scenario's RNG
  // stream depends on which scenarios ran before it (or on worker count).
  struct JobSpec {
    std::string scenario;
    std::size_t scenario_index;
    bool robust;
  };
  std::vector<JobSpec> jobs;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    jobs.push_back(JobSpec{scenarios[si], si, false});
    jobs.push_back(JobSpec{scenarios[si], si, true});
  }
  const bool want_series = !args.get_string("timeseries-out").empty();
  const bool want_journal = !args.get_string("journal-out").empty();
  const bool want_incidents =
      want_journal || !args.get_string("incidents-out").empty();
  const double slo_target = args.get_double("slo-target");
  const auto run_matrix = [&](std::size_t workers) {
    const core::ParallelCampaign campaign(workers);
    return campaign.run<JobResult>(jobs.size(), [&](std::size_t index) {
      const JobSpec& spec = jobs[index];
      return run_scenario(spec.scenario, spec.robust,
                          core::job_seed(knobs.seed, spec.scenario_index),
                          knobs, want_series, want_incidents, slo_target);
    });
  };

  const auto outcomes =
      run_matrix(core::resolve_workers(args.get_int("workers")));

  std::vector<Row> rows;
  std::vector<std::string> incident_rows;
  bool write_failed = false;
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    const JobSpec& spec = jobs[index];
    const bool robust = spec.robust;
    const std::string& scenario = spec.scenario;
    if (!outcomes[index].ok) {
      std::fprintf(stderr, "error: %s/%s failed: %s\n", scenario.c_str(),
                   robust ? "robust" : "fragile",
                   outcomes[index].error.c_str());
      write_failed = true;
      continue;
    }
    const JobResult& job = outcomes[index].value;
    if (want_series && !job.series_json.empty()) {
      const std::string path =
          with_slug(args.get_string("timeseries-out"), job.series_name);
      if (!obs::write_text_file(path, job.series_json)) {
        std::fprintf(stderr, "error: failed to write timeseries to %s\n",
                     path.c_str());
        write_failed = true;
      }
    }
    if (want_journal && !job.journal_json.empty()) {
      const std::string path =
          with_slug(args.get_string("journal-out"),
                    scenario + "/" + (robust ? "robust" : "fragile"));
      if (!obs::write_text_file(path, job.journal_json)) {
        std::fprintf(stderr, "error: failed to write journal to %s\n",
                     path.c_str());
        write_failed = true;
      }
    }
    if (!job.incidents_json.empty()) {
      incident_rows.push_back(job.incidents_json);
    }
    {
      const RunResult& r = job.r;
      std::string notes;
      if (r.ue_failovers > 0) {
        notes += "ue-failovers=" + std::to_string(r.ue_failovers) + " ";
      }
      if (r.forward_failovers > 0) {
        notes += "fwd-failovers=" + std::to_string(r.forward_failovers) + " ";
      }
      if (r.stale_served > 0) {
        notes += "stale=" + std::to_string(r.stale_served) + " ";
      }
      if (r.fetch_retries > 0) {
        notes += "fetch-retries=" + std::to_string(r.fetch_retries) + " ";
      }
      if (r.ldns_switches > 0) {
        notes += "ldns-switches=" + std::to_string(r.ldns_switches) + " ";
      }
      if (r.monitor_transitions > 0) {
        notes += "drains=" + std::to_string(r.monitor_transitions);
      }
      char recover[32];
      if (r.time_to_recover_ms < 0.0) {
        std::snprintf(recover, sizeof(recover), "%11s", "never");
      } else {
        std::snprintf(recover, sizeof(recover), "%11.0f",
                      r.time_to_recover_ms);
      }
      std::printf("%-22s %-8s %4zu/%-3zu %8.1f%% %9.1f %9.1f %s %s\n",
                  scenario.c_str(), robust ? "robust" : "fragile", r.ok,
                  r.requests, 100.0 * r.success_rate, r.latency.p50,
                  r.latency.p99, recover, notes.c_str());
      std::printf("%-22s %-8s   %s\n", "", "",
                  obs::slo_summary(r.slo).c_str());
      rows.push_back(Row{scenario, robust ? "robust" : "fragile", r});
    }
  }

  // Serializer shared by --json-out and the --scaling-out identity check:
  // byte-for-byte the same payload a serial run produces.
  const auto matrix_json = [&knobs](const std::vector<Row>& matrix_rows) {
    std::string out;
    char buf[1600];
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"bench\": \"fault_availability\",\n"
                  "  %s,\n"
                  "  \"unit\": \"ms\",\n"
                  "  \"requests\": %zu,\n"
                  "  \"fault_window_ms\": [%lld, %lld],\n"
                  "  \"scenarios\": [\n",
                  obs::provenance_json("fault_availability", knobs.seed)
                      .c_str(),
                  knobs.requests,
                  static_cast<long long>(knobs.fault_start.to_millis()),
                  static_cast<long long>(knobs.fault_end.to_millis()));
    out += buf;
    for (std::size_t i = 0; i < matrix_rows.size(); ++i) {
      const Row& row = matrix_rows[i];
      const RunResult& r = row.r;
      std::snprintf(
          buf, sizeof(buf),
          "    {\"scenario\": \"%s\", \"mode\": \"%s\", \"ok\": %zu, "
          "\"requests\": %zu, \"success_rate\": %.4f, "
          "\"mean\": %.3f, \"p50\": %.3f, \"p99\": %.3f, \"max\": %.3f, "
          "\"time_to_recover_ms\": %.1f, \"window_failures\": %zu, "
          "\"ue_retransmissions\": %llu, \"ue_timeouts\": %llu, "
          "\"ue_servfails\": %llu, \"ue_failovers\": %llu, "
          "\"forward_failovers\": %llu, \"stale_served\": %llu, "
          "\"fetch_retries\": %llu, "
          "\"monitor_transitions\": %llu, \"ldns_switches\": %zu, "
          "\"injections\": %zu, "
          "\"slo_ok\": %s, \"slo_windows\": %zu, "
          "\"slo_windows_violated\": %zu, \"slo_budget_consumed\": %.4f, "
          "\"slo_worst_burn_rate\": %.4f, "
          "\"slo_first_violation_ms\": %.1f, "
          "\"slo_last_violation_ms\": %.1f}%s\n",
          row.scenario.c_str(), row.mode.c_str(), r.ok, r.requests,
          r.success_rate, r.latency.mean, r.latency.p50, r.latency.p99,
          r.latency.max, r.time_to_recover_ms, r.window_failures,
          static_cast<unsigned long long>(r.ue_retransmissions),
          static_cast<unsigned long long>(r.ue_timeouts),
          static_cast<unsigned long long>(r.ue_servfails),
          static_cast<unsigned long long>(r.ue_failovers),
          static_cast<unsigned long long>(r.forward_failovers),
          static_cast<unsigned long long>(r.stale_served),
          static_cast<unsigned long long>(r.fetch_retries),
          static_cast<unsigned long long>(r.monitor_transitions),
          r.ldns_switches, r.injections, r.slo.ok ? "true" : "false",
          r.slo.windows.size(), r.slo.windows_violated,
          r.slo.budget_consumed, r.slo.worst_burn_rate,
          r.slo.first_violation_ms, r.slo.last_violation_ms,
          i + 1 < matrix_rows.size() ? "," : "");
      out += buf;
    }
    out += "  ]\n}\n";
    return out;
  };

  const std::string json_out = args.get_string("json-out");
  if (!json_out.empty()) {
    if (!obs::write_text_file(json_out, matrix_json(rows))) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu runs to %s\n", rows.size(),
                 json_out.c_str());
  }

  const std::string incidents_out = args.get_string("incidents-out");
  if (!incidents_out.empty()) {
    std::string out = "{\n  \"bench\": \"fault_incidents\",\n  " +
                      obs::provenance_json("fault_incidents", knobs.seed) +
                      ",\n  \"scenarios\": [\n";
    for (std::size_t i = 0; i < incident_rows.size(); ++i) {
      out += "    " + incident_rows[i];
      out += i + 1 < incident_rows.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    if (!obs::write_text_file(incidents_out, out)) {
      std::fprintf(stderr, "failed to open %s\n", incidents_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu incident rows to %s\n",
                 incident_rows.size(), incidents_out.c_str());
  }

  // --scaling-out: re-run the identical matrix once per worker count,
  // recording wall-clock time and asserting that every run's JSON payload
  // is byte-identical to the one above. Timings are hardware-dependent
  // (speedup saturates at min(jobs, cores)); the `identical` bits are the
  // determinism contract and must always be true.
  const std::string scaling_out = args.get_string("scaling-out");
  if (!scaling_out.empty()) {
    std::vector<std::size_t> counts;
    const std::string spec = args.get_string("scaling-workers");
    for (std::size_t pos = 0; pos < spec.size();) {
      const std::size_t comma = spec.find(',', pos);
      const std::string item =
          spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!item.empty()) {
        const long n = std::atol(item.c_str());
        if (n >= 1) counts.push_back(static_cast<std::size_t>(n));
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (counts.empty()) counts = {1, 2, 4, 8};
    const std::string reference = matrix_json(rows);
    struct Point {
      std::size_t workers;
      double wall_ms;
      bool identical;
    };
    std::vector<Point> points;
    std::printf("\n=== parallel scaling: %zu jobs ===\n", jobs.size());
    std::printf("%8s %10s %9s %10s\n", "workers", "wall(ms)", "speedup",
                "identical");
    for (const std::size_t n : counts) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto rerun = run_matrix(n);
      const auto t1 = std::chrono::steady_clock::now();
      std::vector<Row> rerun_rows;
      for (std::size_t index = 0; index < rerun.size(); ++index) {
        if (!rerun[index].ok) continue;
        rerun_rows.push_back(Row{jobs[index].scenario,
                                 jobs[index].robust ? "robust" : "fragile",
                                 rerun[index].value.r});
      }
      Point p;
      p.workers = n;
      p.wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      p.identical = matrix_json(rerun_rows) == reference;
      if (!p.identical) write_failed = true;
      points.push_back(p);
      const double speedup =
          points.front().wall_ms > 0.0 ? points.front().wall_ms / p.wall_ms
                                       : 0.0;
      std::printf("%8zu %10.0f %8.2fx %10s\n", p.workers, p.wall_ms, speedup,
                  p.identical ? "yes" : "NO");
    }
    std::string out = "{\n  \"bench\": \"parallel_scaling\",\n  " +
                      obs::provenance_json("parallel_scaling", knobs.seed) +
                      ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"grid\": \"fault_matrix\",\n  \"jobs\": %zu,\n"
                  "  \"requests_per_job\": %zu,\n"
                  "  \"hardware_concurrency\": %zu,\n  \"points\": [\n",
                  jobs.size(), knobs.requests, core::resolve_workers(0));
    out += buf;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      std::snprintf(buf, sizeof(buf),
                    "    {\"workers\": %zu, \"wall_ms\": %.1f, "
                    "\"speedup_vs_first\": %.3f, \"identical\": %s}%s\n",
                    p.workers, p.wall_ms,
                    p.wall_ms > 0.0 ? points.front().wall_ms / p.wall_ms
                                    : 0.0,
                    p.identical ? "true" : "false",
                    i + 1 < points.size() ? "," : "");
      out += buf;
    }
    out += "  ]\n}\n";
    if (!obs::write_text_file(scaling_out, out)) {
      std::fprintf(stderr, "failed to open %s\n", scaling_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu scaling points to %s\n", points.size(),
                 scaling_out.c_str());
  }
  return write_failed ? 1 : 0;
}
