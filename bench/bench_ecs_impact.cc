// §4 ECS experiment: "We also evaluated the use of the EDNS Client Subnet
// feature (ECS), implemented by enabling ECS support at L-DNS and C-DNS for
// the first three deployment scenarios. ECS changed the measurements by
// 1.01x, 1.08x and 0.95x, respectively ... In these experiments the DNS
// query was always correctly resolved to the appropriate CDN cache server
// at the MEC."
#include <cstdio>

#include "core/fig5.h"

using namespace mecdns;

namespace {
double run_mean(core::Fig5Deployment deployment, bool ecs,
                double* mec_share = nullptr) {
  core::Fig5Testbed::Config config;
  config.deployment = deployment;
  config.enable_ecs = ecs;
  core::Fig5Testbed testbed(config);
  const core::SeriesResult result = testbed.measure(50);
  if (mec_share != nullptr) {
    *mec_share = result.answer_share(
        [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
  }
  return result.totals().mean();
}
}  // namespace

int main() {
  std::printf("=== ECS impact on the first three Figure 5 deployments ===\n");
  std::printf("%-24s %12s %12s %8s %12s\n", "deployment", "no-ECS(ms)",
              "ECS(ms)", "ratio", "MEC-correct");

  const core::Fig5Deployment scenarios[] = {
      core::Fig5Deployment::kMecLdnsMecCdns,
      core::Fig5Deployment::kMecLdnsLanCdns,
      core::Fig5Deployment::kMecLdnsWanCdns,
  };
  const double paper_ratios[] = {1.01, 1.08, 0.95};
  int i = 0;
  for (const auto deployment : scenarios) {
    const double base = run_mean(deployment, false);
    double mec_share = 0.0;
    const double with_ecs = run_mean(deployment, true, &mec_share);
    std::printf("%-24s %12.1f %12.1f %7.2fx %11.0f%%  (paper: %.2fx)\n",
                core::to_string(deployment).c_str(), base, with_ecs,
                with_ecs / base, 100.0 * mec_share, paper_ratios[i++]);
  }
  std::printf(
      "\npaper: ECS is a wash (~1x) for MEC-CDN — the split-namespace design "
      "already localizes without it;\nanswers remain correctly pinned to the "
      "MEC cache servers in every run\n");
  return 0;
}
