// Extension E1: the Table 1 domains, served from the MEC.
//
// §4: "This design does not impose any restrictions on the developers' use
// of domain names at MEC." To make that concrete, this bench deploys the
// five real CDN domains of Table 1 as delivery services on a MEC-CDN site
// (the C-DNS is simply made authoritative for each), and compares the
// cellular client's lookup latency against the Figure 2 baseline (carrier
// L-DNS resolving over the WAN). The paper's "what if" — the measurement
// study rerun in a world where these CDNs are MEC-CDNs.
#include <cstdio>

#include "cdn/traffic_router.h"
#include "core/study.h"
#include "dns/plugin.h"
#include "mec/orchestrator.h"
#include "ran/profiles.h"
#include "ran/segment.h"
#include "ran/ue.h"
#include "workload/domains.h"

using namespace mecdns;

int main() {
  // --- baseline: today's cellular path (from the Figure 2 study) -----------
  core::MeasurementStudy::Config study_config;
  study_config.queries_per_cell = 30;
  core::MeasurementStudy study(study_config);

  // --- the MEC world ----------------------------------------------------------
  simnet::Simulator sim;
  simnet::Network net(sim, util::Rng(31337));
  ran::RanSegment::Config rc;
  rc.name = "lte";
  rc.enb_addr = simnet::Ipv4Address::must_parse("10.100.0.1");
  rc.sgw_addr = simnet::Ipv4Address::must_parse("10.100.0.2");
  rc.pgw_addr = simnet::Ipv4Address::must_parse("203.0.113.1");
  rc.ue_subnet = simnet::Cidr::must_parse("10.45.0.0/16");
  rc.access = ran::lte();
  ran::RanSegment lte(net, rc);

  mec::Orchestrator orchestrator(net, {});
  net.add_link(lte.pgw(), orchestrator.cluster().gateway(),
               simnet::LatencyModel::constant(simnet::SimTime::millis(0.5)));

  // C-DNS authoritative for *all* of the sites' CDN domains: one router,
  // delivery services rooted at the real (unchanged) domain names.
  const simnet::NodeId tr_node = orchestrator.cluster().add_worker("router");
  const mec::Deployment tr_dep =
      orchestrator.deploy("traffic-router", "cdn", tr_node, 53);
  cdn::TrafficRouter::Config trc;
  trc.cdn_domain = dns::DnsName::root();  // scope: whatever is deployed here
  trc.answer_ttl = 0;
  cdn::TrafficRouter router(net, tr_node, "mec-cdns",
                            simnet::LatencyModel::normal(
                                simnet::SimTime::millis(2.6),
                                simnet::SimTime::micros(300),
                                simnet::SimTime::millis(1)),
                            trc, tr_dep.cluster_ip);
  router.coverage().set_default_group("mec-edge");

  const simnet::NodeId cache_node =
      orchestrator.cluster().add_worker("cache-0");
  const mec::Deployment cache_dep =
      orchestrator.deploy("edge-cache-0", "cdn", cache_node, 20);
  cdn::CacheServer cache(net, cache_node, "edge-cache-0", {},
                         cache_dep.cluster_ip);
  router.add_cache("mec-edge",
                   cdn::CacheInfo{"edge-cache-0", cache_dep.cluster_ip, true});
  for (const auto& entry : workload::table1_domains()) {
    router.add_delivery_service(cdn::DeliveryService{
        entry.website, dns::DnsName::must_parse(entry.cdn_domain),
        {"mec-edge"}});
  }

  // MEC L-DNS: internal view + a public view forwarding everything at the
  // first hop to the collocated C-DNS.
  const simnet::NodeId dns_node = orchestrator.cluster().add_worker("infra");
  const mec::Deployment dns_dep =
      orchestrator.deploy("kube-dns", "kube-system", dns_node, 10);
  dns::PluginChainServer ldns(net, dns_node, "mec-coredns",
                              simnet::LatencyModel::normal(
                                  simnet::SimTime::millis(2.4),
                                  simnet::SimTime::micros(300),
                                  simnet::SimTime::millis(1)),
                              dns_dep.cluster_ip);
  dns::PluginChain& internal = ldns.add_view(
      "internal", {orchestrator.cluster().config().node_cidr,
                   orchestrator.cluster().config().service_cidr});
  internal.add(std::make_unique<dns::ZonePlugin>(
      orchestrator.registry().zone()));
  internal.add(std::make_unique<dns::RefusePlugin>());
  dns::PluginChain& pub = ldns.add_default_view("public");
  pub.add(std::make_unique<dns::ForwardPlugin>(
      dns::DnsName::root(),
      std::vector<simnet::Endpoint>{{tr_dep.cluster_ip, dns::kDnsPort}},
      ldns.transport()));

  ran::UserEquipment ue(net, lte, "ue",
                        simnet::Ipv4Address::must_parse("10.45.0.2"),
                        simnet::Endpoint{dns_dep.cluster_ip, dns::kDnsPort});

  std::printf("=== E1: Table 1 domains served from the MEC (paper: no "
              "domain-name restrictions) ===\n");
  std::printf("%-14s %-24s %16s %14s %8s\n", "website", "domain",
              "cellular today", "cellular+MEC", "gain");

  const auto& profiles = workload::figure3_profiles();
  for (std::size_t site = 0; site < profiles.size(); ++site) {
    const auto baseline =
        study.run_cell(site, workload::kCellularMobile).trimmed.mean;

    core::QueryRunner runner(net, ue.resolver(), nullptr);
    core::QueryRunner::Options options;
    options.queries = 30;
    options.warmup = 1;
    options.spacing = simnet::SimTime::millis(500);
    const core::SeriesResult result = runner.run(
        dns::DnsName::must_parse(profiles[site].cdn_domain),
        dns::RecordType::kA, options);

    std::printf("%-14s %-24s %13.1f ms %11.1f ms %7.1fx\n",
                profiles[site].website.c_str(),
                profiles[site].cdn_domain.c_str(), baseline,
                result.totals().mean(), baseline / result.totals().mean());
  }
  std::printf(
      "\nreading: the same unchanged CDN domains resolve at the first hop "
      "once deployed as MEC delivery\nservices — every site drops to the "
      "MEC latency envelope without URL or app changes.\n");
  return 0;
}
