// Ablation A5: multi-tier miss referral.
//
// §3 P2: "In cases where the content is not available at MEC-CDN, C-DNS
// simply returns the address of another C-DNS running at a different CDN
// tier, e.g., a mid-tier running alongside the mobile network core, or a
// far-tier running in the cloud." This bench measures the full referral
// path (edge C-DNS -> cascading CNAME -> provider recursion -> mid-tier
// C-DNS -> cloud cache) against first-hop resolution of edge-deployed
// content, for both the DNS lookup alone and the complete DNS+fetch.
#include <cstdio>
#include <string>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "util/args.h"

using namespace mecdns;

namespace {

struct PathStats {
  util::SampleSet dns_ms;
  util::SampleSet total_ms;
  std::size_t failures = 0;
};

PathStats run(core::Fig5Testbed& testbed, const dns::DnsName& host,
              int requests) {
  PathStats stats;
  for (int i = 0; i < requests; ++i) {
    testbed.network().simulator().schedule_after(
        simnet::SimTime::seconds(1), [&, i] {
          cdn::Url url;
          url.host = host;
          url.path = "/segment000" + std::to_string(i % 8);
          testbed.ue().resolve_and_fetch(
              url, [&](const ran::UserEquipment::FetchOutcome& outcome) {
                if (!outcome.ok) {
                  ++stats.failures;
                  return;
                }
                stats.dns_ms.add(outcome.dns_latency.to_millis());
                stats.total_ms.add(outcome.total.to_millis());
              });
        });
    testbed.network().simulator().run();
  }
  return stats;
}

/// One campaign job: a private testbed resolving either the edge-deployed
/// or the parent-tier-only name. The historical version reused one testbed
/// for both phases, so the referred phase inherited the edge phase's
/// resolver caches and RNG position.
PathStats run_path(bool edge_content, std::uint64_t seed) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  config.provider_fallback = true;
  core::Fig5Testbed testbed(config);
  testbed.ue().resolver().set_chase_cnames(true);
  return run(testbed,
             edge_content ? testbed.content_name() : testbed.tier2_name(),
             30);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_ablation_tier_referral: A5 multi-tier miss referral");
  args.add_int("seed", 42,
               "campaign seed; each path runs with "
               "split_mix64(seed ^ row_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<PathStats>(
      2, [&](std::size_t index) {
        return run_path(index == 0, core::job_seed(campaign_seed, index));
      });
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: path %zu failed: %s\n", i,
                   outcomes[i].error.c_str());
      return 1;
    }
  }
  const PathStats& edge = outcomes[0].value;
  const PathStats& referred = outcomes[1].value;

  std::printf("=== A5: edge-deployed vs parent-tier-referred content ===\n");
  std::printf("%-44s %10s %12s %10s\n", "content", "dns(ms)", "dns+get(ms)",
              "failures");
  std::printf("%-44s %10.1f %12.1f %10zu\n",
              "demo1 (deployed at MEC, first-hop answer)",
              edge.dns_ms.mean(), edge.total_ms.mean(), edge.failures);
  std::printf("%-44s %10.1f %12.1f %10zu\n",
              "demo2 (cloud-tier only, cascading CNAME)",
              referred.dns_ms.mean(), referred.total_ms.mean(),
              referred.failures);

  std::printf(
      "\nreferral penalty: +%.1f ms DNS, +%.1f ms end-to-end (two "
      "resolution legs plus the WAN fetch)\n",
      referred.dns_ms.mean() - edge.dns_ms.mean(),
      referred.total_ms.mean() - edge.total_ms.mean());
  std::printf(
      "expected shape: the referral keeps misses *correct* (served by the "
      "parent tier) at WAN cost,\nwhile edge-deployed content keeps the "
      "MEC latency envelope — the paper's best-effort story.\n");
  return 0;
}
