// Ablation A5: multi-tier miss referral.
//
// §3 P2: "In cases where the content is not available at MEC-CDN, C-DNS
// simply returns the address of another C-DNS running at a different CDN
// tier, e.g., a mid-tier running alongside the mobile network core, or a
// far-tier running in the cloud." This bench measures the full referral
// path (edge C-DNS -> cascading CNAME -> provider recursion -> mid-tier
// C-DNS -> cloud cache) against first-hop resolution of edge-deployed
// content, for both the DNS lookup alone and the complete DNS+fetch.
#include <cstdio>

#include "core/fig5.h"

using namespace mecdns;

namespace {

struct PathStats {
  util::SampleSet dns_ms;
  util::SampleSet total_ms;
  std::size_t failures = 0;
};

PathStats run(core::Fig5Testbed& testbed, const dns::DnsName& host,
              int requests) {
  PathStats stats;
  for (int i = 0; i < requests; ++i) {
    testbed.network().simulator().schedule_after(
        simnet::SimTime::seconds(1), [&, i] {
          cdn::Url url;
          url.host = host;
          url.path = "/segment000" + std::to_string(i % 8);
          testbed.ue().resolve_and_fetch(
              url, [&](const ran::UserEquipment::FetchOutcome& outcome) {
                if (!outcome.ok) {
                  ++stats.failures;
                  return;
                }
                stats.dns_ms.add(outcome.dns_latency.to_millis());
                stats.total_ms.add(outcome.total.to_millis());
              });
        });
    testbed.network().simulator().run();
  }
  return stats;
}

}  // namespace

int main() {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.provider_fallback = true;
  core::Fig5Testbed testbed(config);
  testbed.ue().resolver().set_chase_cnames(true);

  std::printf("=== A5: edge-deployed vs parent-tier-referred content ===\n");
  std::printf("%-44s %10s %12s %10s\n", "content", "dns(ms)", "dns+get(ms)",
              "failures");

  const PathStats edge = run(testbed, testbed.content_name(), 30);
  std::printf("%-44s %10.1f %12.1f %10zu\n",
              "demo1 (deployed at MEC, first-hop answer)",
              edge.dns_ms.mean(), edge.total_ms.mean(), edge.failures);

  const PathStats referred = run(testbed, testbed.tier2_name(), 30);
  std::printf("%-44s %10.1f %12.1f %10zu\n",
              "demo2 (cloud-tier only, cascading CNAME)",
              referred.dns_ms.mean(), referred.total_ms.mean(),
              referred.failures);

  std::printf(
      "\nreferral penalty: +%.1f ms DNS, +%.1f ms end-to-end (two "
      "resolution legs plus the WAN fetch)\n",
      referred.dns_ms.mean() - edge.dns_ms.mean(),
      referred.total_ms.mean() - edge.total_ms.mean());
  std::printf(
      "expected shape: the referral keeps misses *correct* (served by the "
      "parent tier) at WAN cost,\nwhile edge-deployed content keeps the "
      "MEC latency envelope — the paper's best-effort story.\n");
  return 0;
}
