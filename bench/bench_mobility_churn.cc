// Mobility-churn robustness: handoff storms, flash crowds and commute
// waves over K MEC cells, fragile vs robust, graded as CI verdicts.
//
// For each mobility scenario this bench runs the MobilityTestbed twice:
//
//   fragile  the paper-measurement configuration — bounded L-DNS service
//            capacity with silent queue-overflow drops, no ingress guard,
//            unbounded edge allocation, clients with no retries and no
//            fallback. A population converging on one cell pushes its
//            L-DNS past capacity and every dropped query is a hard 2 s
//            timeout failure.
//   robust   overload-safe degradation on — SERVFAIL-shedding ingress
//            guard (rate + queue-probe), bounded-load edge allocation with
//            parent-tier referrals, per-site auto-scaling, and clients
//            that retry, fail over to the provider L-DNS, chase referral
//            CNAMEs and follow in-flight resolver re-targets.
//
// The verdict is an SLO over 500 ms sim-time windows: --gate exits
// nonzero unless robust meets the fetch-success SLO on *every* scenario
// while fragile exhausts its error budget on at least one. --misconfigure
// swaps the robust runs for a broken-robust configuration (site machinery
// on, client fallback forgotten) that still *reports* as "robust" — the
// gate must catch it.
//
// The (scenario x mode) matrix runs under core::ParallelCampaign with
// per-scenario seeds; every artifact is byte-identical at any --workers.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/mobility.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "util/args.h"

using namespace mecdns;

namespace {

/// "series.json" + "flash-crowd/robust" -> "series.flash-crowd.robust.json".
std::string with_slug(const std::string& path, std::string name) {
  for (char& c : name) {
    if (c == '/') c = '.';
  }
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

std::string matrix_json(const std::vector<core::MobilityRunResult>& rows,
                        const core::MobilityKnobs& knobs,
                        std::uint64_t seed) {
  std::string out;
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"mobility_churn\",\n"
                "  %s,\n"
                "  \"unit\": \"ms\",\n"
                "  \"ues\": %u,\n  \"rate_hz\": %.2f,\n  \"cells\": %u,\n"
                "  \"duration_ms\": %lld,\n"
                "  \"event_window_ms\": [%lld, %lld],\n"
                "  \"slo_target\": %.4f,\n"
                "  \"runs\": [\n",
                obs::provenance_json("mobility_churn", seed).c_str(),
                knobs.ues, knobs.rate_hz,
                static_cast<unsigned>(knobs.cells),
                static_cast<long long>(knobs.duration.to_millis()),
                static_cast<long long>(knobs.event_start.to_millis()),
                static_cast<long long>(knobs.event_end.to_millis()),
                knobs.slo_target);
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out += "    " + core::mobility_row_json(rows[i]);
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_mobility_churn: handoff storms and flash crowds over K MEC "
      "cells, fragile vs robust, graded as SLO verdicts");
  args.add_string("json-out", "BENCH_mobility.json",
                  "write the (scenario,mode) matrix as JSON ('' disables)");
  args.add_string("scenario", "all",
                  "commute-wave | flash-crowd | handoff-storm | all");
  args.add_int("ues", 600, "logical UE population");
  args.add_double("rate-hz", 2.0, "per-UE resolve-and-fetch rate");
  args.add_int("cells", 3, "MEC cells (RAN segment + site each)");
  args.add_int("cohort", 8, "real UEs with HandoffManagers");
  args.add_int("duration-s", 40, "measurement window");
  args.add_int("event-start-s", 10, "mobility event start");
  args.add_int("event-end-s", 25, "mobility event end");
  args.add_double("participation", 0.8,
                  "fraction of UEs joining the wave/crowd");
  args.add_int("ldns-workers", 1, "per-site L-DNS service workers");
  args.add_int("ldns-max-queue", 64,
               "per-site L-DNS queue bound (overflow drops silently)");
  args.add_int("guard-threshold-qps", 800,
               "robust: ingress guard shed threshold");
  args.add_int("cache-capacity", 300,
               "robust: bounded-load selections per cache per 1 s");
  args.add_int("max-replicas", 4, "robust: auto-scaler replica ceiling");
  args.add_double("slo-target", 0.99,
                  "per-window fetch success ratio the SLO requires");
  args.add_int("seed", 42, "campaign seed (per-scenario seeds derive)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  args.add_string("timeseries-out", "",
                  "per-run windowed-metrics JSON with phase annotations "
                  "(scenario/mode slug is inserted before the extension)");
  args.add_string("journal-out", "",
                  "per-run flight-recorder journal JSON (scenario/mode slug "
                  "is inserted before the extension; '' disables)");
  args.add_string("incidents-out", "",
                  "correlated incident forensics (BENCH_incidents.json "
                  "shape: MTTD/MTTR per scenario; '' disables)");
  args.add_bool("gate", false,
                "CI verdict: exit nonzero unless robust meets the SLO on "
                "every scenario AND fragile violates it on at least one");
  args.add_bool("misconfigure", false,
                "run the robust rows with the client-side fallback "
                "forgotten (still labelled robust); a working --gate must "
                "fail this");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }

  core::MobilityKnobs knobs;
  knobs.ues = static_cast<std::uint32_t>(args.get_int("ues"));
  knobs.rate_hz = args.get_double("rate-hz");
  knobs.cells = static_cast<std::uint16_t>(args.get_int("cells"));
  knobs.cohort = static_cast<std::size_t>(args.get_int("cohort"));
  knobs.duration = simnet::SimTime::seconds(args.get_int("duration-s"));
  knobs.event_start = simnet::SimTime::seconds(args.get_int("event-start-s"));
  knobs.event_end = simnet::SimTime::seconds(args.get_int("event-end-s"));
  knobs.participation = args.get_double("participation");
  knobs.ldns_workers = static_cast<std::size_t>(args.get_int("ldns-workers"));
  knobs.ldns_max_queue =
      static_cast<std::size_t>(args.get_int("ldns-max-queue"));
  knobs.guard_threshold_qps =
      static_cast<std::size_t>(args.get_int("guard-threshold-qps"));
  knobs.cache_selection_capacity =
      static_cast<std::uint64_t>(args.get_int("cache-capacity"));
  knobs.max_replicas = static_cast<std::size_t>(args.get_int("max-replicas"));
  knobs.slo_target = args.get_double("slo-target");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::vector<workload::MobilityScenario> scenarios;
  const std::string pick = args.get_string("scenario");
  if (pick == "all") {
    scenarios = workload::all_mobility_scenarios();
  } else if (auto s = workload::mobility_from_slug(pick)) {
    scenarios.push_back(*s);
  } else {
    std::fprintf(stderr, "unknown scenario '%s'\n", pick.c_str());
    return 2;
  }

  const core::MobilityMode hardened_mode =
      args.get_bool("misconfigure") ? core::MobilityMode::kMisconfigured
                                    : core::MobilityMode::kRobust;
  // The grid: (scenario x mode). Both modes of a scenario share the seed
  // derived from the scenario index, so the movement history and arrival
  // times are identical — only the handling differs.
  struct JobSpec {
    workload::MobilityScenario scenario;
    std::size_t scenario_index;
    core::MobilityMode mode;
  };
  std::vector<JobSpec> jobs;
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    jobs.push_back(JobSpec{scenarios[si], si, core::MobilityMode::kFragile});
    jobs.push_back(JobSpec{scenarios[si], si, hardened_mode});
  }
  const bool want_series = !args.get_string("timeseries-out").empty();
  const bool want_journal = !args.get_string("journal-out").empty();
  const bool want_incidents =
      want_journal || !args.get_string("incidents-out").empty();

  std::printf("=== Mobility churn: %u UEs x %.1f Hz over %u cells, "
              "event [%lld, %lld) s ===\n",
              knobs.ues, knobs.rate_hz, static_cast<unsigned>(knobs.cells),
              static_cast<long long>(knobs.event_start.to_seconds()),
              static_cast<long long>(knobs.event_end.to_seconds()));

  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<core::MobilityRunResult>(
      jobs.size(), [&](std::size_t index) {
        const JobSpec& spec = jobs[index];
        return core::run_mobility_job(
            spec.scenario, spec.mode,
            core::job_seed(seed, spec.scenario_index), knobs, want_series,
            want_incidents);
      });

  std::printf("%-14s %-8s %10s %9s %9s %9s %8s %8s %s\n", "scenario", "mode",
              "ok/issued", "success", "p50(ms)", "p99(ms)", "shed",
              "handoffs", "notes");
  std::vector<core::MobilityRunResult> rows;
  bool write_failed = false;
  bool robust_all_ok = true;
  bool fragile_any_violation = false;
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    const JobSpec& spec = jobs[index];
    if (!outcomes[index].ok) {
      std::fprintf(stderr, "error: %s/%s failed: %s\n",
                   workload::mobility_slug(spec.scenario),
                   core::mobility_mode_label(spec.mode),
                   outcomes[index].error.c_str());
      write_failed = true;
      continue;
    }
    const core::MobilityRunResult& r = outcomes[index].value;
    if (spec.mode == core::MobilityMode::kFragile) {
      fragile_any_violation = fragile_any_violation || !r.slo.ok;
    } else {
      robust_all_ok = robust_all_ok && r.slo.ok;
    }
    if (want_series && !r.series_json.empty()) {
      const std::string path =
          with_slug(args.get_string("timeseries-out"),
                    r.scenario + "/" + r.mode);
      if (!obs::write_text_file(path, r.series_json)) {
        std::fprintf(stderr, "error: failed to write timeseries to %s\n",
                     path.c_str());
        write_failed = true;
      }
    }
    if (want_journal && !r.journal_json.empty()) {
      const std::string path = with_slug(args.get_string("journal-out"),
                                         r.scenario + "/" + r.mode);
      if (!obs::write_text_file(path, r.journal_json)) {
        std::fprintf(stderr, "error: failed to write journal to %s\n",
                     path.c_str());
        write_failed = true;
      }
    }
    std::string notes;
    if (r.ue_failovers > 0) {
      notes += "failovers=" + std::to_string(r.ue_failovers) + " ";
    }
    if (r.in_flight_retargets > 0) {
      notes += "retargets=" + std::to_string(r.in_flight_retargets) + " ";
    }
    if (r.referred_to_parent > 0) {
      notes += "referred=" + std::to_string(r.referred_to_parent) + " ";
    }
    if (r.scale_ups > 0) {
      notes += "scale-ups=" + std::to_string(r.scale_ups) + " ";
    }
    if (r.ue_timeouts > 0) {
      notes += "timeouts=" + std::to_string(r.ue_timeouts);
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%llu/%llu",
                  static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.issued));
    std::printf("%-14s %-8s %10s %8.1f%% %9.1f %9.1f %8llu %8llu %s\n",
                r.scenario.c_str(), r.mode.c_str(), ratio,
                100.0 * r.success_rate, r.latency.p50, r.latency.p99,
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.cohort_handoffs),
                notes.c_str());
    std::printf("%-14s %-8s   %s\n", "", "", obs::slo_summary(r.slo).c_str());
    rows.push_back(r);
  }

  const std::string json_out = args.get_string("json-out");
  if (!json_out.empty()) {
    if (!obs::write_text_file(json_out, matrix_json(rows, knobs, seed))) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu runs to %s\n", rows.size(),
                 json_out.c_str());
  }

  const std::string incidents_out = args.get_string("incidents-out");
  if (!incidents_out.empty()) {
    std::string out = "{\n  \"bench\": \"mobility_incidents\",\n  " +
                      obs::provenance_json("mobility_incidents", seed) +
                      ",\n  \"scenarios\": [\n";
    std::size_t emitted = 0;
    for (const core::MobilityRunResult& r : rows) {
      if (r.incidents_json.empty()) continue;
      if (emitted++ > 0) out += ",\n";
      out += "    " + r.incidents_json;
    }
    out += "\n  ]\n}\n";
    if (!obs::write_text_file(incidents_out, out)) {
      std::fprintf(stderr, "failed to open %s\n", incidents_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu incident rows to %s\n", emitted,
                 incidents_out.c_str());
  }

  if (args.get_bool("gate")) {
    // Two-sided verdict: the robustness story must hold AND the workload
    // must be hard enough to actually discriminate. A gate that passes
    // when fragile also passes is measuring nothing.
    const bool pass = robust_all_ok && fragile_any_violation;
    std::printf("\nGATE %s: robust SLO %s on all scenarios; fragile %s "
                "its error budget\n",
                pass ? "PASS" : "FAIL", robust_all_ok ? "met" : "MISSED",
                fragile_any_violation ? "exhausted" : "NEVER exhausted");
    if (!pass) return 1;
  }
  return write_failed ? 1 : 0;
}
