// Ablation A6: C-DNS answer TTL — per-query routing vs L-DNS caching.
//
// The testbed (and real CDN routers) answer with tiny TTLs so every lookup
// reaches the C-DNS and routing stays per-query accurate. At the MEC this
// costs little (the C-DNS is one fabric hop away), but it also means the
// MEC L-DNS cache plugin never helps. This bench sweeps the answer TTL and
// reports mean lookup latency, the L-DNS cache hit rate, and routing
// staleness: after a cache server is drained mid-run, how many answers
// still point at it.
#include <cstdio>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "util/args.h"

using namespace mecdns;

namespace {

struct TtlOutcome {
  double mean_ms;
  double cache_hit_rate;
  double stale_share;  ///< answers naming the drained cache, post-drain
};

TtlOutcome run(std::uint32_t ttl, std::uint64_t seed) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  core::Fig5Testbed testbed(config);
  cdn::TrafficRouter* router = testbed.site().router();
  router->set_answer_ttl(ttl);

  // Phase 1: 40 queries.
  const core::SeriesResult phase1 = testbed.measure(40,
                                                    simnet::SimTime::seconds(1));
  // Drain one cache (scale-in / maintenance) and measure which answers are
  // stale.
  const simnet::Ipv4Address drained_addr = testbed.site().cache_address(0);
  router->set_cache_healthy("mec-edge",
                            testbed.site().caches()[0]->name(), false);
  const core::SeriesResult phase2 = testbed.measure(40,
                                                    simnet::SimTime::seconds(1));

  TtlOutcome outcome;
  util::SampleSet all;
  all.add_all(phase1.totals().values());
  all.add_all(phase2.totals().values());
  outcome.mean_ms = all.mean();
  outcome.cache_hit_rate =
      testbed.site().public_dns_cache()->stats().hit_rate();
  std::size_t stale = 0;
  std::size_t total = 0;
  for (const auto& sample : phase2.samples) {
    if (!sample.ok) continue;
    ++total;
    if (sample.address == drained_addr) ++stale;
  }
  outcome.stale_share = total == 0 ? 0.0 : static_cast<double>(stale) / total;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_ablation_ttl: A6 C-DNS answer TTL sweep");
  args.add_int("seed", 42,
               "campaign seed; each TTL point runs with "
               "split_mix64(seed ^ row_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const std::vector<std::uint32_t> ttls = {0u, 2u, 10u, 60u, 300u};
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<TtlOutcome>(
      ttls.size(), [&](std::size_t index) {
        return run(ttls[index], core::job_seed(campaign_seed, index));
      });

  std::printf("=== A6: C-DNS answer TTL sweep (1 query/s, drain mid-run) ===\n");
  std::printf("%8s %10s %12s %14s\n", "ttl(s)", "mean(ms)", "L-DNS hits",
              "stale answers");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok) {
      std::fprintf(stderr, "error: ttl=%u failed: %s\n", ttls[i],
                   outcomes[i].error.c_str());
      return 1;
    }
    const TtlOutcome& outcome = outcomes[i].value;
    std::printf("%8u %10.1f %11.0f%% %13.0f%%\n", ttls[i], outcome.mean_ms,
                100.0 * outcome.cache_hit_rate, 100.0 * outcome.stale_share);
  }
  std::printf(
      "\nexpected shape: higher TTLs shave the in-MEC C-DNS hop off most "
      "lookups (small win) but leave\na growing share of answers pointing "
      "at a drained cache — the per-query-routing trade the paper's\n"
      "testbed resolves in favour of TTL~0, which is cheap when the C-DNS "
      "is one fabric hop away.\n");
  return 0;
}
