// Ablation A2: ingress-overload fallback (the paper's DoS mitigation).
//
// §3 P1: the orchestrator "can simply switch (or only unicast) to the
// provider's L-DNS during high ingress (above a threshold)". The MEC L-DNS
// runs an overload guard; the UE multicasts to both the MEC DNS and the
// provider L-DNS. Below the threshold queries resolve at the MEC; above
// it the guard sheds (REFUSED) and the provider path keeps service alive —
// "end users will observe only a degradation but not unavailability".
#include <cstdio>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "util/args.h"

using namespace mecdns;

namespace {
struct Run {
  double qps;
  double mean_ms;
  double mec_share;
  std::size_t failures;
  std::uint64_t shed;
};

struct HysteresisRun {
  double storm_mec_share;
  double calm_mec_share;
  std::size_t failures;
  std::uint64_t shed;
  std::uint64_t trips;
  std::uint64_t recoveries;
};

// A 5s storm at 80 qps (well above the 50 qps threshold) followed by a calm
// 10 qps tail. The stateless guard flaps right at the threshold boundary and
// keeps admitting ~threshold qps of the storm into the MEC; the hysteresis
// guard trips coherently and re-admits only after the ingress has stayed
// quiet for `recovery_windows` monitor windows.
HysteresisRun run_storm_then_calm(std::size_t recovery_windows,
                                  std::uint64_t seed) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  config.provider_fallback = true;
  config.overload_threshold_qps = 50;
  config.overload_recovery_windows = recovery_windows;
  core::Fig5Testbed testbed(config);
  testbed.ue().resolver().set_secondary(testbed.provider_endpoint());

  const auto is_mec = [&](simnet::Ipv4Address a) {
    return testbed.is_mec_cache(a);
  };
  const core::SeriesResult storm = testbed.measure_name(
      testbed.content_name(), 400, simnet::SimTime::micros(12500), 0);
  const core::SeriesResult calm = testbed.measure_name(
      testbed.content_name(), 40, simnet::SimTime::millis(100), 0);

  HysteresisRun run;
  run.storm_mec_share = storm.answer_share(is_mec);
  run.calm_mec_share = calm.answer_share(is_mec);
  run.failures = storm.failures() + calm.failures();
  const auto* guard = testbed.site().overload_guard();
  run.shed = guard != nullptr ? guard->shed() : 0;
  run.trips = guard != nullptr ? guard->trips() : 0;
  run.recoveries = guard != nullptr ? guard->recoveries() : 0;
  return run;
}

Run run_at(double qps, std::size_t threshold, std::uint64_t seed) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.seed = seed;
  config.provider_fallback = true;
  config.overload_threshold_qps = threshold;
  core::Fig5Testbed testbed(config);
  testbed.ue().resolver().set_secondary(testbed.provider_endpoint());

  const auto spacing = simnet::SimTime::millis(1000.0 / qps);
  const core::SeriesResult result =
      testbed.measure_name(testbed.content_name(), 160, spacing, 2);
  Run run;
  run.qps = qps;
  run.mean_ms = result.totals().mean();
  run.mec_share = result.answer_share(
      [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
  run.failures = result.failures();
  run.shed =
      testbed.site().overload_guard() != nullptr
          ? testbed.site().overload_guard()->shed()
          : 0;
  return run;
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "bench_ablation_ingress_fallback: A2 overload fallback ablation");
  args.add_int("seed", 42,
               "campaign seed; each run gets split_mix64(seed ^ row_index), "
               "rows numbered across both sweeps");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));

  constexpr std::size_t kThreshold = 50;  // queries/second
  const std::vector<double> loads = {5.0, 20.0, 40.0, 80.0, 160.0, 320.0};
  const auto load_outcomes = campaign.run<Run>(
      loads.size(), [&](std::size_t index) {
        return run_at(loads[index], kThreshold,
                      core::job_seed(campaign_seed, index));
      });
  // The hysteresis rows continue the same row numbering so no two runs in
  // the bench share a derived seed.
  const std::vector<std::size_t> windows = {0, 2};
  const auto storm_outcomes = campaign.run<HysteresisRun>(
      windows.size(), [&](std::size_t index) {
        return run_storm_then_calm(
            windows[index],
            core::job_seed(campaign_seed, loads.size() + index));
      });

  std::printf(
      "=== A2: overload fallback (guard threshold %zu qps, UE multicasts "
      "MEC+provider) ===\n",
      kThreshold);
  std::printf("%8s %10s %12s %10s %10s\n", "load", "mean(ms)", "MEC-answers",
              "failures", "shed@MEC");
  for (std::size_t i = 0; i < load_outcomes.size(); ++i) {
    if (!load_outcomes[i].ok) {
      std::fprintf(stderr, "error: load %.0f/s failed: %s\n", loads[i],
                   load_outcomes[i].error.c_str());
      return 1;
    }
    const Run& run = load_outcomes[i].value;
    std::printf("%6.0f/s %10.1f %11.0f%% %10zu %10llu\n", run.qps,
                run.mean_ms, 100.0 * run.mec_share, run.failures,
                static_cast<unsigned long long>(run.shed));
  }
  std::printf(
      "\nexpected shape: below threshold all answers come from the MEC; "
      "above it the guard sheds\nand the provider path serves — higher "
      "latency (degradation) but zero failures (availability)\n");

  std::printf(
      "\n=== A2b: recovery hysteresis (storm 80 qps x 5s, then calm "
      "10 qps) ===\n");
  std::printf("%16s %11s %10s %8s %7s %11s %9s\n", "guard", "storm-MEC",
              "calm-MEC", "shed", "trips", "recoveries", "failures");
  for (std::size_t i = 0; i < storm_outcomes.size(); ++i) {
    if (!storm_outcomes[i].ok) {
      std::fprintf(stderr, "error: hysteresis(%zu) failed: %s\n", windows[i],
                   storm_outcomes[i].error.c_str());
      return 1;
    }
    const HysteresisRun& run = storm_outcomes[i].value;
    char label[32];
    if (windows[i] == 0) {
      std::snprintf(label, sizeof label, "stateless");
    } else {
      std::snprintf(label, sizeof label, "hysteresis(%zu)", windows[i]);
    }
    std::printf("%16s %10.0f%% %9.0f%% %8llu %7llu %11llu %9zu\n", label,
                100.0 * run.storm_mec_share, 100.0 * run.calm_mec_share,
                static_cast<unsigned long long>(run.shed),
                static_cast<unsigned long long>(run.trips),
                static_cast<unsigned long long>(run.recoveries),
                run.failures);
  }
  std::printf(
      "\nexpected shape: the stateless guard flaps at the threshold and "
      "keeps admitting ~50 qps\nof the storm; the hysteresis guard sheds "
      "coherently (a handful of trip/recover\ntransitions instead of "
      "per-query flapping) and re-admits only after the ingress stays\n"
      "quiet for recovery_windows monitor windows — calm traffic lands on "
      "the MEC again.\nFailures stay zero in every configuration.\n");
  return 0;
}
