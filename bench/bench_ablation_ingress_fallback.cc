// Ablation A2: ingress-overload fallback (the paper's DoS mitigation).
//
// §3 P1: the orchestrator "can simply switch (or only unicast) to the
// provider's L-DNS during high ingress (above a threshold)". The MEC L-DNS
// runs an overload guard; the UE multicasts to both the MEC DNS and the
// provider L-DNS. Below the threshold queries resolve at the MEC; above
// it the guard sheds (REFUSED) and the provider path keeps service alive —
// "end users will observe only a degradation but not unavailability".
#include <cstdio>

#include "core/fig5.h"

using namespace mecdns;

namespace {
struct Run {
  double qps;
  double mean_ms;
  double mec_share;
  std::size_t failures;
  std::uint64_t shed;
};

Run run_at(double qps, std::size_t threshold) {
  core::Fig5Testbed::Config config;
  config.deployment = core::Fig5Deployment::kMecLdnsMecCdns;
  config.provider_fallback = true;
  config.overload_threshold_qps = threshold;
  core::Fig5Testbed testbed(config);
  testbed.ue().resolver().set_secondary(testbed.provider_endpoint());

  const auto spacing = simnet::SimTime::millis(1000.0 / qps);
  const core::SeriesResult result =
      testbed.measure_name(testbed.content_name(), 160, spacing, 2);
  Run run;
  run.qps = qps;
  run.mean_ms = result.totals().mean();
  run.mec_share = result.answer_share(
      [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
  run.failures = result.failures();
  run.shed =
      testbed.site().overload_guard() != nullptr
          ? testbed.site().overload_guard()->shed()
          : 0;
  return run;
}
}  // namespace

int main() {
  constexpr std::size_t kThreshold = 50;  // queries/second
  std::printf(
      "=== A2: overload fallback (guard threshold %zu qps, UE multicasts "
      "MEC+provider) ===\n",
      kThreshold);
  std::printf("%8s %10s %12s %10s %10s\n", "load", "mean(ms)", "MEC-answers",
              "failures", "shed@MEC");
  for (const double qps : {5.0, 20.0, 40.0, 80.0, 160.0, 320.0}) {
    const Run run = run_at(qps, kThreshold);
    std::printf("%6.0f/s %10.1f %11.0f%% %10zu %10llu\n", run.qps,
                run.mean_ms, 100.0 * run.mec_share, run.failures,
                static_cast<unsigned long long>(run.shed));
  }
  std::printf(
      "\nexpected shape: below threshold all answers come from the MEC; "
      "above it the guard sheds\nand the provider path serves — higher "
      "latency (degradation) but zero failures (availability)\n");
  return 0;
}
