// Microbenchmarks (google-benchmark) for the hot paths under the
// simulation: DNS wire codec, cache, consistent hashing, zone lookup, the
// event loop, and Zipf sampling.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "cdn/consistent_hash.h"
#include "dns/cache.h"
#include "dns/wire.h"
#include "dns/zone.h"
#include "obs/journal.h"
#include "obs/perf.h"
#include "simnet/simulator.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "workload/zipf.h"

using namespace mecdns;

namespace {

dns::Message sample_message(std::size_t answers) {
  dns::Message msg = dns::make_query(
      1234, dns::DnsName::must_parse("video.demo1.mycdn.ciab.test"),
      dns::RecordType::kA);
  msg.header.qr = true;
  msg.header.aa = true;
  for (std::size_t i = 0; i < answers; ++i) {
    msg.answers.push_back(dns::make_a(
        msg.questions.front().name,
        simnet::Ipv4Address(static_cast<std::uint32_t>(0x0a600000 + i)), 30));
  }
  msg.edns = dns::Edns{};
  dns::ClientSubnet ecs;
  ecs.address = simnet::Ipv4Address::must_parse("203.0.113.0");
  msg.edns->client_subnet = ecs;
  return msg;
}

void BM_WireEncode(benchmark::State& state) {
  const dns::Message msg =
      sample_message(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(msg));
  }
}
BENCHMARK(BM_WireEncode)->Arg(1)->Arg(8)->Arg(32);

void BM_WireDecode(benchmark::State& state) {
  const auto wire =
      dns::encode(sample_message(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto decoded = dns::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WireDecode)->Arg(1)->Arg(8)->Arg(32);

void BM_CacheLookup(benchmark::State& state) {
  dns::DnsCache cache(8192);
  const auto now = simnet::SimTime::seconds(1);
  for (int i = 0; i < 1024; ++i) {
    const auto name =
        dns::DnsName::must_parse("host" + std::to_string(i) + ".example.com");
    cache.insert(name, dns::RecordType::kA,
                 {dns::make_a(name, simnet::Ipv4Address(0x0a000001u + i), 300)},
                 now);
  }
  const auto qname = dns::DnsName::must_parse("host512.example.com");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(qname, dns::RecordType::kA, now));
  }
}
BENCHMARK(BM_CacheLookup);

void BM_ConsistentHashPick(benchmark::State& state) {
  cdn::ConsistentHashRing ring(64);
  for (int i = 0; i < state.range(0); ++i) {
    ring.add("cache-" + std::to_string(i));
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.pick("object-" + std::to_string(++i)));
  }
}
BENCHMARK(BM_ConsistentHashPick)->Arg(4)->Arg(64)->Arg(256);

void BM_ZoneLookup(benchmark::State& state) {
  dns::Zone zone(dns::DnsName::must_parse("example.com"));
  zone.must_add(dns::make_soa(dns::DnsName::must_parse("example.com"),
                              dns::DnsName::must_parse("ns1.example.com"), 1,
                              300, 3600));
  for (int i = 0; i < 512; ++i) {
    zone.must_add(dns::make_a(
        dns::DnsName::must_parse("h" + std::to_string(i) + ".example.com"),
        simnet::Ipv4Address(0xc0000200u + i), 60));
  }
  const auto qname = dns::DnsName::must_parse("h300.example.com");
  for (auto _ : state) {
    benchmark::DoNotOptimize(zone.lookup(qname, dns::RecordType::kA));
  }
}
BENCHMARK(BM_ZoneLookup);

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    simnet::Simulator sim;
    std::uint64_t counter = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.schedule_at(simnet::SimTime::micros(static_cast<double>(i)),
                      [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEvents)->Arg(1024)->Arg(16384);

// Parse text -> inline wire-format DnsName -> back to text. The PR 7 hot
// path: the whole round trip should touch no heap for names <= 54 wire
// bytes (the inline capacity).
void BM_NameParseRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    auto name = dns::DnsName::parse("video.demo1.mycdn.ciab.test");
    benchmark::DoNotOptimize(name.value().to_string());
  }
}
BENCHMARK(BM_NameParseRoundTrip);

// schedule_after + drain: the pooled-event churn pattern every simulated
// timer exercises (schedule, fire, reschedule).
void BM_ScheduleAfterDrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simnet::Simulator sim;
    std::uint64_t counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_after(simnet::SimTime::micros(static_cast<double>(i % 7)),
                         [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleAfterDrain)->Arg(1024)->Arg(16384);

// Flat open-addressing map vs std::map on the DNS-cache key shape — the
// head-to-head behind moving every hot map off the red-black tree.
using CacheKey = std::pair<dns::DnsName, dns::RecordType>;
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    return k.first.hash() * 31 + static_cast<std::size_t>(k.second);
  }
};

std::vector<CacheKey> cache_keys(std::size_t n) {
  std::vector<CacheKey> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.emplace_back(
        dns::DnsName::must_parse("host" + std::to_string(i) + ".example.com"),
        dns::RecordType::kA);
  }
  return keys;
}

void BM_FlatMapLookup(benchmark::State& state) {
  const auto keys = cache_keys(static_cast<std::size_t>(state.range(0)));
  util::FlatHashMap<CacheKey, std::uint64_t, CacheKeyHash> map;
  for (std::size_t i = 0; i < keys.size(); ++i) map[keys[i]] = i;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i]));
    if (++i == keys.size()) i = 0;
  }
}
BENCHMARK(BM_FlatMapLookup)->Arg(64)->Arg(1024)->Arg(8192);

void BM_StdMapLookup(benchmark::State& state) {
  const auto keys = cache_keys(static_cast<std::size_t>(state.range(0)));
  std::map<CacheKey, std::uint64_t> map;
  for (std::size_t i = 0; i < keys.size(); ++i) map[keys[i]] = i;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i]));
    if (++i == keys.size()) i = 0;
  }
}
BENCHMARK(BM_StdMapLookup)->Arg(64)->Arg(1024)->Arg(8192);

void BM_ZipfSample(benchmark::State& state) {
  workload::ZipfGenerator zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

// Flight-recorder append: the journal's zero-steady-state-cost claim as a
// number. The ring is preallocated in the constructor, so record() must be
// a bounded POD copy — allocs_per_op is pinned at 0 (the counting
// allocator is linked into this binary; a regression shows up both here
// and in the obs_journal unit test's hard assert).
void BM_JournalAppend(benchmark::State& state) {
  obs::Journal journal(static_cast<std::size_t>(state.range(0)));
  simnet::SimTime at = simnet::SimTime::millis(1);
  const obs::PerfSnapshot snapshot = obs::PerfSnapshot::take();
  for (auto _ : state) {
    at = at + simnet::SimTime::millis(1);
    journal.record(at, obs::JournalKind::kGuardTrip, /*cell=*/2,
                   "ingress shedding", 800, 1234);
    benchmark::DoNotOptimize(journal.size());
  }
  const util::perf::Counters delta = snapshot.delta();
  state.counters["allocs_per_op"] = benchmark::Counter(
      static_cast<double>(delta.allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_JournalAppend)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
