// Figure 3: distribution of DNS responses among different cache servers.
//
// Regenerates the paper's horizontal stacked bars: for each site and access
// network, the share of answers falling in each provider CIDR pool. The
// paper's observation 2 — "although clients send requests from a similar
// geo-location, they are not guaranteed to access the content from the same
// set of cache servers" — shows up as per-network differences in the mix.
#include <cstdio>
#include <string>

#include "core/study.h"

using namespace mecdns;

int main() {
  core::MeasurementStudy::Config config;
  config.queries_per_cell = 60;  // more samples for stable shares
  core::MeasurementStudy study(config);

  std::printf("=== Figure 3: distribution of DNS responses (%%) ===\n");
  const auto& profiles = workload::figure3_profiles();
  for (std::size_t site = 0; site < profiles.size(); ++site) {
    const auto& profile = profiles[site];
    std::printf("\n--- %s (%s) ---\n", profile.website.c_str(),
                profile.cdn_domain.c_str());
    for (const auto& network_class : workload::network_classes()) {
      const auto cell = study.run_cell(site, network_class);
      std::printf("  %-16s:", network_class.c_str());
      for (const auto& pool : profile.pools) {
        const std::string label = pool.provider + " (" + pool.cidr + ")";
        std::printf("  %s %.0f%%", label.c_str(),
                    100.0 * cell.distribution.share(label));
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nexpected shape (paper): for a fixed domain, the pool mix differs "
      "across the three access networks\n");
  return 0;
}
