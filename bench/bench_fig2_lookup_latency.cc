// Figure 2: DNS lookup latency for the Table 1 CDN domains over three types
// of Internet connectivity.
//
// Regenerates the paper's five per-site bar groups. Each bar is the mean of
// the 8th-92nd percentile of the per-query lookup latencies ("Each bar is
// based on at least 12 tests, only including the results from the 8th- to
// the 92th-percentile"), with untrimmed min/max as the whiskers. The paper
// observes: cellular-mobile is substantially slower and more variable than
// wired-campus and wifi-home, across all five domains.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/study.h"
#include "util/strings.h"

using namespace mecdns;

int main() {
  std::printf("=== Table 1: tested CDN domain names ===\n");
  for (const auto& entry : workload::table1_domains()) {
    std::printf("  %-14s | %s\n", entry.website.c_str(),
                entry.cdn_domain.c_str());
  }

  core::MeasurementStudy::Config config;
  config.queries_per_cell = 40;
  core::MeasurementStudy study(config);

  std::printf("\n=== Figure 2: DNS lookup latency (ms) ===\n");
  std::printf("%-14s %-18s %10s %8s %8s %8s\n", "website", "network",
              "bar(mean)", "min", "max", "samples");

  struct Bar {
    std::string website;
    std::string network;
    util::Summary trimmed;
  };
  std::vector<Bar> bars;
  double scale = 0.0;

  const auto& profiles = workload::figure3_profiles();
  for (std::size_t site = 0; site < profiles.size(); ++site) {
    double wired_mean = 0.0;
    for (const auto& network_class : workload::network_classes()) {
      const auto cell = study.run_cell(site, network_class);
      std::printf("%-14s %-18s %10.1f %8.1f %8.1f %8zu\n",
                  cell.website.c_str(), network_class.c_str(),
                  cell.trimmed.mean, cell.trimmed.min, cell.trimmed.max,
                  cell.latencies_ms.size());
      if (network_class == workload::kWiredCampus) {
        wired_mean = cell.trimmed.mean;
      }
      if (network_class == workload::kCellularMobile && wired_mean > 0.0) {
        std::printf("%-14s %-18s %9.1fx slower than wired\n", "", "-> cellular",
                    cell.trimmed.mean / wired_mean);
      }
      bars.push_back(Bar{cell.website, network_class, cell.trimmed});
      scale = std::max(scale, cell.trimmed.max);
    }
  }

  std::printf("\n%-34s 0 %s %.0f ms\n", "", std::string(38, '-').c_str(),
              scale);
  for (const Bar& bar : bars) {
    std::printf("%-14s %-18s |%s| %.1f\n", bar.website.c_str(),
                bar.network.c_str(),
                util::ascii_bar(bar.trimmed.mean, scale, 40).c_str(),
                bar.trimmed.mean);
  }
  std::printf(
      "\nexpected shape (paper): cellular-mobile bars are the tallest and "
      "most variable in every group\n");
  return 0;
}
