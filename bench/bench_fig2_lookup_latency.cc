// Figure 2: DNS lookup latency for the Table 1 CDN domains over three types
// of Internet connectivity.
//
// Regenerates the paper's five per-site bar groups. Each bar is the mean of
// the 8th-92nd percentile of the per-query lookup latencies ("Each bar is
// based on at least 12 tests, only including the results from the 8th- to
// the 92th-percentile"), with untrimmed min/max as the whiskers. The paper
// observes: cellular-mobile is substantially slower and more variable than
// wired-campus and wifi-home, across all five domains.
//
// Each (site, network) cell is one parallel-campaign job with a private
// MeasurementStudy seeded split_mix64(seed ^ cell_index) — the historical
// single-study version threaded one RNG through all fifteen cells, so every
// cell's numbers depended on the cells that ran before it. Output is merged
// in cell order and is byte-identical for any --workers value.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "core/study.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/strings.h"

using namespace mecdns;

namespace {

/// "Booking.com" + "wifi-home" -> "booking-com.wifi-home": a filename-safe
/// cell label for the per-cell trace/timeseries files.
std::string cell_slug(const std::string& website,
                      const std::string& network_class) {
  std::string out;
  for (const char c : website) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '-') {
      out += '-';
    }
  }
  return out + "." + network_class;
}

/// "trace.json" + "airbnb.wired-campus" -> "trace.airbnb.wired-campus.json".
std::string with_slug(const std::string& path, const std::string& name) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_fig2: Figure 2 DNS lookup latency bars");
  args.add_string("json-out", "BENCH_fig2.json",
                  "write per-bar summaries as JSON ('' disables)");
  args.add_string("trace-out", "",
                  "per-cell Chrome trace-event JSON (cell slug is inserted "
                  "before the extension)");
  args.add_string("metrics-out", "",
                  "write counters/gauges/histograms as JSON (merged across "
                  "cells)");
  args.add_string("timeseries-out", "",
                  "per-cell windowed-metrics JSON (cell slug is inserted "
                  "before the extension)");
  args.add_double("timeseries-window-ms", 500.0,
                  "sim-time window width for --timeseries-out");
  args.add_int("seed", 7,
               "campaign seed; each (site, network) cell runs with "
               "split_mix64(seed ^ cell_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const bool want_trace = !args.get_string("trace-out").empty();
  const bool want_metrics = !args.get_string("metrics-out").empty();
  const bool want_series = !args.get_string("timeseries-out").empty();

  std::printf("=== Table 1: tested CDN domain names ===\n");
  for (const auto& entry : workload::table1_domains()) {
    std::printf("  %-14s | %s\n", entry.website.c_str(),
                entry.cdn_domain.c_str());
  }

  // One job per (site, network) cell: a private study, observers and RNG.
  // Artifacts are serialized in-job; writes, merges and printing happen
  // below on this thread in cell order.
  struct JobOutput {
    core::MeasurementStudy::CellResult cell;
    std::string trace_json;
    std::string timeseries_json;
    obs::Registry metrics;
  };
  const auto& profiles = workload::figure3_profiles();
  const auto& classes = workload::network_classes();
  const std::size_t cell_count = profiles.size() * classes.size();
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<JobOutput>(
      cell_count, [&](std::size_t index) {
        core::MeasurementStudy::Config config;
        config.queries_per_cell = 40;
        config.seed = core::job_seed(campaign_seed, index);
        core::MeasurementStudy study(config);
        obs::TraceSink trace(study.network().simulator());
        obs::Registry metrics;
        obs::TimeSeries timeseries(
            study.network().simulator(),
            simnet::SimTime::millis(args.get_double("timeseries-window-ms")));
        study.set_observers(want_trace ? &trace : nullptr,
                            want_metrics ? &metrics : nullptr);
        study.set_timeseries(want_series ? &timeseries : nullptr);

        JobOutput out;
        out.cell = study.run_cell(index / classes.size(),
                                  classes[index % classes.size()]);
        if (want_trace) out.trace_json = trace.to_chrome_trace();
        if (want_series) out.timeseries_json = timeseries.to_json();
        if (want_metrics) out.metrics = std::move(metrics);
        return out;
      });

  std::printf("\n=== Figure 2: DNS lookup latency (ms) ===\n");
  std::printf("%-14s %-18s %10s %8s %8s %8s\n", "website", "network",
              "bar(mean)", "min", "max", "samples");

  struct Bar {
    std::string website;
    std::string network;
    util::Summary trimmed;
  };
  std::vector<Bar> bars;
  double scale = 0.0;
  obs::Registry combined;
  double wired_mean = 0.0;
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    const auto& outcome = outcomes[index];
    if (!outcome.ok) {
      std::fprintf(stderr, "error: cell %zu failed: %s\n", index,
                   outcome.error.c_str());
      return 1;
    }
    const JobOutput& out = outcome.value;
    const auto& cell = out.cell;
    const std::string slug = cell_slug(cell.website, cell.network_class);
    if (want_trace) {
      const std::string path = with_slug(args.get_string("trace-out"), slug);
      if (!obs::write_text_file(path, out.trace_json)) {
        std::fprintf(stderr, "error: failed to write trace to %s\n",
                     path.c_str());
        return 1;
      }
    }
    if (want_series) {
      const std::string path =
          with_slug(args.get_string("timeseries-out"), slug);
      if (!obs::write_text_file(path, out.timeseries_json)) {
        std::fprintf(stderr, "error: failed to write timeseries to %s\n",
                     path.c_str());
        return 1;
      }
    }
    if (want_metrics) combined.merge(out.metrics);

    std::printf("%-14s %-18s %10.1f %8.1f %8.1f %8zu\n", cell.website.c_str(),
                cell.network_class.c_str(), cell.trimmed.mean,
                cell.trimmed.min, cell.trimmed.max,
                cell.latencies_ms.size());
    if (cell.network_class == workload::kWiredCampus) {
      wired_mean = cell.trimmed.mean;
    }
    if (cell.network_class == workload::kCellularMobile && wired_mean > 0.0) {
      std::printf("%-14s %-18s %9.1fx slower than wired\n", "", "-> cellular",
                  cell.trimmed.mean / wired_mean);
    }
    bars.push_back(Bar{cell.website, cell.network_class, cell.trimmed});
    scale = std::max(scale, cell.trimmed.max);
  }

  std::printf("\n%-34s 0 %s %.0f ms\n", "", std::string(38, '-').c_str(),
              scale);
  for (const Bar& bar : bars) {
    std::printf("%-14s %-18s |%s| %.1f\n", bar.website.c_str(),
                bar.network.c_str(),
                util::ascii_bar(bar.trimmed.mean, scale, 40).c_str(),
                bar.trimmed.mean);
  }
  std::printf(
      "\nexpected shape (paper): cellular-mobile bars are the tallest and "
      "most variable in every group\n");

  const std::string json_out = args.get_string("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig2_lookup_latency\",\n  %s,\n"
                 "  \"unit\": \"ms\",\n  \"scenarios\": [\n",
                 obs::provenance_json("fig2_lookup_latency", campaign_seed).c_str());
    for (std::size_t i = 0; i < bars.size(); ++i) {
      const Bar& bar = bars[i];
      const util::Summary& s = bar.trimmed;
      std::fprintf(
          f,
          "    {\"scenario\": \"%s/%s\", \"count\": %zu, \"mean\": %.3f, "
          "\"stddev\": %.3f, \"min\": %.3f, \"max\": %.3f, \"p50\": %.3f, "
          "\"p90\": %.3f, \"p99\": %.3f}%s\n",
          bar.website.c_str(), bar.network.c_str(), s.count, s.mean, s.stddev,
          s.min, s.max, s.p50, s.p90, s.p99,
          i + 1 < bars.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu scenarios to %s\n", bars.size(),
                 json_out.c_str());
  }
  if (want_metrics && !combined.write_json(args.get_string("metrics-out"))) {
    std::fprintf(stderr, "error: failed to write metrics to %s\n",
                 args.get_string("metrics-out").c_str());
    return 1;
  }
  return 0;
}
