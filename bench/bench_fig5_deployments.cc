// Figure 5: DNS lookup latency on the LTE testbed for different local
// resolvers and for MEC-CDN.
//
// Regenerates the paper's bar chart: six deployments, each bar split into
// the wireless (UE<->P-GW) segment and the DNS-query segment beyond the
// P-GW, with min/max whiskers. Prints Table 2 (ecosystem roles) as a
// preamble since the deployments are exactly the points in that ecosystem
// where a resolver can live.
//
// Paper reference values (ms): MEC/MEC 29.4, MEC/LAN 34.8, MEC/WAN 60.9,
// LAN L-DNS 114.6, Google 112.5, Cloudflare 285.7 — "up to 9x lower
// resolution latency". Shape, not absolute values, is the reproduction
// target.
#include <cstdio>
#include <string>
#include <vector>

#include "core/fig5.h"
#include "core/roles.h"
#include "util/strings.h"

using namespace mecdns;

int main() {
  std::printf("=== Table 2: entities and roles in MEC CDN ===\n");
  for (const auto& role : core::ecosystem_roles()) {
    std::printf("  %-18s | %s\n", role.entity.c_str(), role.role.c_str());
  }

  std::printf("\n=== Figure 5: DNS lookup latency on the LTE testbed ===\n");
  std::printf("%-24s %10s %12s %12s %8s %8s %s\n", "deployment", "mean(ms)",
              "wireless", "dns-query", "min", "max", "answers");

  struct Row {
    core::Fig5Deployment deployment;
    util::Summary summary;
    double wireless;
    double beyond;
    std::string answers;
  };
  std::vector<Row> rows;
  double mec_mean = 0.0;
  double worst_mean = 0.0;
  for (const auto deployment : core::all_fig5_deployments()) {
    core::Fig5Testbed::Config config;
    config.deployment = deployment;
    core::Fig5Testbed testbed(config);
    const core::SeriesResult result = testbed.measure(50);

    Row row;
    row.deployment = deployment;
    row.summary = result.totals().summarize();
    row.wireless = result.wireless().mean();
    row.beyond = result.beyond_pgw().mean();
    const double mec_share = result.answer_share(
        [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
    const double cloud_share = result.answer_share(
        [&](simnet::Ipv4Address a) { return testbed.is_cloud_cache(a); });
    if (mec_share == 1.0) {
      row.answers = "all MEC caches";
    } else if (cloud_share == 1.0) {
      row.answers = "all cloud cache";
    } else {
      row.answers = util::fmt_fixed(100.0 * mec_share, 0) + "% MEC / " +
                    util::fmt_fixed(100.0 * cloud_share, 0) + "% cloud";
    }

    std::printf("%-24s %10.1f %12.1f %12.1f %8.1f %8.1f %s\n",
                core::to_string(deployment).c_str(), row.summary.mean,
                row.wireless, row.beyond, row.summary.min, row.summary.max,
                row.answers.c_str());

    if (deployment == core::Fig5Deployment::kMecLdnsMecCdns) {
      mec_mean = row.summary.mean;
    }
    if (row.summary.mean > worst_mean) worst_mean = row.summary.mean;
    rows.push_back(std::move(row));
  }

  std::printf("\n%-24s 0 %s %.0f ms\n", "", std::string(38, '-').c_str(),
              worst_mean);
  for (const Row& row : rows) {
    // Two segments, like the paper's stacked bars: wireless ('=') then the
    // DNS-query time beyond the P-GW ('#').
    std::string bar = util::ascii_bar(row.wireless, worst_mean, 40);
    const std::string full =
        util::ascii_bar(row.wireless + row.beyond, worst_mean, 40);
    for (std::size_t i = 0; i < bar.size(); ++i) {
      if (bar[i] == '#') {
        bar[i] = '=';
      } else if (full[i] == '#') {
        bar[i] = '#';
      }
    }
    std::printf("%-24s|%s| %.1f\n", core::to_string(row.deployment).c_str(),
                bar.c_str(), row.summary.mean);
  }
  std::printf("%-24s legend: '=' wireless (UE<->P-GW), '#' DNS query beyond "
              "the P-GW\n", "");

  if (mec_mean > 0.0) {
    std::printf(
        "\nMEC-CDN speedup vs worst non-MEC deployment: %.1fx (paper: up to "
        "9x)\n",
        worst_mean / mec_mean);
  }
  std::printf(
      "paper reference means (ms): 29.4 / 34.8 / 60.9 / 114.6 / 112.5 / "
      "285.7\n");
  return 0;
}
