// Figure 5: DNS lookup latency on the LTE testbed for different local
// resolvers and for MEC-CDN.
//
// Regenerates the paper's bar chart: six deployments, each bar split into
// the wireless (UE<->P-GW) segment and the DNS-query segment beyond the
// P-GW, with min/max whiskers. Prints Table 2 (ecosystem roles) as a
// preamble since the deployments are exactly the points in that ecosystem
// where a resolver can live.
//
// Paper reference values (ms): MEC/MEC 29.4, MEC/LAN 34.8, MEC/WAN 60.9,
// LAN L-DNS 114.6, Google 112.5, Cloudflare 285.7 — "up to 9x lower
// resolution latency". Shape, not absolute values, is the reproduction
// target.
#include <cstdio>
#include <string>
#include <vector>

#include "core/fig5.h"
#include "core/parallel.h"
#include "core/roles.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/strings.h"

using namespace mecdns;

namespace {

/// Filename-safe deployment slug (matches the testbed's --deployment names).
std::string slug(core::Fig5Deployment deployment) {
  switch (deployment) {
    case core::Fig5Deployment::kMecLdnsMecCdns: return "mec-mec";
    case core::Fig5Deployment::kMecLdnsLanCdns: return "mec-lan";
    case core::Fig5Deployment::kMecLdnsWanCdns: return "mec-wan";
    case core::Fig5Deployment::kProviderLdns: return "provider";
    case core::Fig5Deployment::kGoogleDns: return "google";
    case core::Fig5Deployment::kCloudflareDns: return "cloudflare";
  }
  return "unknown";
}

/// "trace.json" + "mec-mec" -> "trace.mec-mec.json". Each deployment runs
/// its own simulator, so each gets its own trace file.
std::string with_slug(const std::string& path, const std::string& name) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + name;
  }
  return path.substr(0, dot) + "." + name + path.substr(dot);
}

/// Copies `src` into `dst` with every metric name prefixed by "<name>.",
/// so one combined file can hold all six deployments side by side.
void merge_prefixed(obs::Registry& dst, const std::string& name,
                    const obs::Registry& src) {
  for (const auto& [key, value] : src.counters()) {
    dst.add(name + "." + key, value);
  }
  for (const auto& [key, value] : src.gauges()) {
    dst.set_gauge(name + "." + key, value);
  }
  for (const auto& [key, histogram] : src.histograms()) {
    dst.histogram(name + "." + key).merge(histogram);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_fig5: Figure 5 deployment latency bars");
  args.add_string("json-out", "BENCH_fig5.json",
                  "write per-deployment summaries as JSON ('' disables)");
  args.add_string("trace-out", "",
                  "per-deployment Chrome trace-event JSON (deployment slug "
                  "is inserted before the extension)");
  args.add_string("metrics-out", "",
                  "combined metrics JSON, names prefixed per deployment");
  args.add_string("timeseries-out", "",
                  "per-deployment windowed-metrics JSON (deployment slug is "
                  "inserted before the extension)");
  args.add_double("timeseries-window-ms", 500.0,
                  "sim-time window width for --timeseries-out");
  args.add_int("seed", 42,
               "campaign seed; each deployment runs with "
               "split_mix64(seed ^ deployment_index)");
  args.add_int("workers", 0,
               "parallel campaign workers (0 = hardware concurrency, "
               "1 = serial); output is byte-identical for any value");
  if (auto result = args.parse(argc - 1, argv + 1); !result.ok()) {
    std::fprintf(stderr, "%s\n%s", result.error().message.c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  const bool want_trace = !args.get_string("trace-out").empty();
  const bool want_metrics = !args.get_string("metrics-out").empty();
  const bool want_series = !args.get_string("timeseries-out").empty();
  obs::Registry combined;

  std::printf("=== Table 2: entities and roles in MEC CDN ===\n");
  for (const auto& role : core::ecosystem_roles()) {
    std::printf("  %-18s | %s\n", role.entity.c_str(), role.role.c_str());
  }

  std::printf("\n=== Figure 5: DNS lookup latency on the LTE testbed ===\n");
  std::printf("%-24s %10s %12s %12s %8s %8s %s\n", "deployment", "mean(ms)",
              "wireless", "dns-query", "min", "max", "answers");

  struct Row {
    core::Fig5Deployment deployment;
    util::Summary summary;
    double wireless;
    double beyond;
    std::string answers;
  };
  // Each deployment is one campaign job: a private testbed (simulator,
  // network, RNG, observers), seeded independently of every other job.
  // Artifacts are serialized inside the job; all file writes, merges and
  // printing happen below in job-index order, so the bench's entire output
  // is byte-identical for any --workers value.
  struct JobOutput {
    Row row;
    std::string trace_json;
    std::string timeseries_json;
    obs::Registry metrics;
  };
  const auto& deployments = core::all_fig5_deployments();
  const auto campaign_seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const core::ParallelCampaign campaign(
      core::resolve_workers(args.get_int("workers")));
  const auto outcomes = campaign.run<JobOutput>(
      deployments.size(), [&](std::size_t index) {
        const auto deployment = deployments[index];
        core::Fig5Testbed::Config config;
        config.deployment = deployment;
        config.seed = core::job_seed(campaign_seed, index);
        core::Fig5Testbed testbed(config);
        obs::TraceSink trace(testbed.network().simulator());
        obs::Registry metrics;
        obs::TimeSeries timeseries(
            testbed.simulator(),
            simnet::SimTime::millis(args.get_double("timeseries-window-ms")));
        testbed.set_observers(want_trace ? &trace : nullptr,
                              want_metrics ? &metrics : nullptr);
        testbed.set_timeseries(want_series ? &timeseries : nullptr);
        const core::SeriesResult result = testbed.measure(50);

        JobOutput out;
        if (want_trace) out.trace_json = trace.to_chrome_trace();
        if (want_series) out.timeseries_json = timeseries.to_json();
        if (want_metrics) {
          testbed.export_metrics(metrics);
          out.metrics = std::move(metrics);
        }
        Row& row = out.row;
        row.deployment = deployment;
        row.summary = result.totals().summarize();
        row.wireless = result.wireless().mean();
        row.beyond = result.beyond_pgw().mean();
        const double mec_share = result.answer_share(
            [&](simnet::Ipv4Address a) { return testbed.is_mec_cache(a); });
        const double cloud_share = result.answer_share(
            [&](simnet::Ipv4Address a) { return testbed.is_cloud_cache(a); });
        if (mec_share == 1.0) {
          row.answers = "all MEC caches";
        } else if (cloud_share == 1.0) {
          row.answers = "all cloud cache";
        } else {
          row.answers = util::fmt_fixed(100.0 * mec_share, 0) + "% MEC / " +
                        util::fmt_fixed(100.0 * cloud_share, 0) + "% cloud";
        }
        return out;
      });

  std::vector<Row> rows;
  double mec_mean = 0.0;
  double worst_mean = 0.0;
  for (std::size_t index = 0; index < outcomes.size(); ++index) {
    const auto& outcome = outcomes[index];
    const auto deployment = deployments[index];
    if (!outcome.ok) {
      std::fprintf(stderr, "error: deployment %s failed: %s\n",
                   slug(deployment).c_str(), outcome.error.c_str());
      return 1;
    }
    const JobOutput& out = outcome.value;
    if (want_trace) {
      const std::string path =
          with_slug(args.get_string("trace-out"), slug(deployment));
      if (!obs::write_text_file(path, out.trace_json)) {
        std::fprintf(stderr, "error: failed to write trace to %s\n",
                     path.c_str());
        return 1;
      }
    }
    if (want_series) {
      const std::string path =
          with_slug(args.get_string("timeseries-out"), slug(deployment));
      if (!obs::write_text_file(path, out.timeseries_json)) {
        std::fprintf(stderr, "error: failed to write timeseries to %s\n",
                     path.c_str());
        return 1;
      }
    }
    if (want_metrics) {
      merge_prefixed(combined, slug(deployment), out.metrics);
    }
    const Row& row = out.row;
    std::printf("%-24s %10.1f %12.1f %12.1f %8.1f %8.1f %s\n",
                core::to_string(deployment).c_str(), row.summary.mean,
                row.wireless, row.beyond, row.summary.min, row.summary.max,
                row.answers.c_str());
    if (deployment == core::Fig5Deployment::kMecLdnsMecCdns) {
      mec_mean = row.summary.mean;
    }
    if (row.summary.mean > worst_mean) worst_mean = row.summary.mean;
    rows.push_back(row);
  }

  std::printf("\n%-24s 0 %s %.0f ms\n", "", std::string(38, '-').c_str(),
              worst_mean);
  for (const Row& row : rows) {
    // Two segments, like the paper's stacked bars: wireless ('=') then the
    // DNS-query time beyond the P-GW ('#').
    std::string bar = util::ascii_bar(row.wireless, worst_mean, 40);
    const std::string full =
        util::ascii_bar(row.wireless + row.beyond, worst_mean, 40);
    for (std::size_t i = 0; i < bar.size(); ++i) {
      if (bar[i] == '#') {
        bar[i] = '=';
      } else if (full[i] == '#') {
        bar[i] = '#';
      }
    }
    std::printf("%-24s|%s| %.1f\n", core::to_string(row.deployment).c_str(),
                bar.c_str(), row.summary.mean);
  }
  std::printf("%-24s legend: '=' wireless (UE<->P-GW), '#' DNS query beyond "
              "the P-GW\n", "");

  if (mec_mean > 0.0) {
    std::printf(
        "\nMEC-CDN speedup vs worst non-MEC deployment: %.1fx (paper: up to "
        "9x)\n",
        worst_mean / mec_mean);
  }
  std::printf(
      "paper reference means (ms): 29.4 / 34.8 / 60.9 / 114.6 / 112.5 / "
      "285.7\n");

  const std::string json_out = args.get_string("json-out");
  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig5_deployments\",\n  %s,\n"
                 "  \"unit\": \"ms\",\n  \"scenarios\": [\n",
                 obs::provenance_json("fig5_deployments", campaign_seed).c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      const util::Summary& s = row.summary;
      std::fprintf(
          f,
          "    {\"scenario\": \"%s\", \"count\": %zu, \"mean\": %.3f, "
          "\"stddev\": %.3f, \"min\": %.3f, \"max\": %.3f, \"p50\": %.3f, "
          "\"p90\": %.3f, \"p99\": %.3f, \"wireless_ms\": %.3f, "
          "\"beyond_pgw_ms\": %.3f, \"answers\": \"%s\"}%s\n",
          slug(row.deployment).c_str(), s.count, s.mean, s.stddev, s.min,
          s.max, s.p50, s.p90, s.p99, row.wireless, row.beyond,
          row.answers.c_str(), i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu scenarios to %s\n", rows.size(),
                 json_out.c_str());
  }
  if (want_metrics && !combined.write_json(args.get_string("metrics-out"))) {
    std::fprintf(stderr, "error: failed to write metrics to %s\n",
                 args.get_string("metrics-out").c_str());
    return 1;
  }
  return 0;
}
